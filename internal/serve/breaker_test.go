package serve

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestBreakerStateMachine drives one breaker through the full closed →
// open → half-open → closed cycle on a fake clock.
func TestBreakerStateMachine(t *testing.T) {
	bs := newBreakerSet(3, 5*time.Second)
	clock := time.Unix(1000, 0)
	bs.now = func() time.Time { return clock }
	key := leaseKey{floorplan: "fp", mapping: "m", solver: "cg", resolution: "coarse"}

	// Below the threshold the breaker stays closed.
	for i := 0; i < 2; i++ {
		if ok, _ := bs.admit(key); !ok {
			t.Fatalf("closed breaker refused at bad=%d", i)
		}
		bs.observe(key, true, false)
	}
	if st := bs.snapshot(); st.Open != 0 {
		t.Fatalf("opened below threshold: %+v", st)
	}
	// A success resets the consecutive count (and prunes the clean entry).
	bs.observe(key, false, false)
	if len(bs.m) != 0 {
		t.Fatalf("clean closed breaker not pruned: %d entries", len(bs.m))
	}

	// Three consecutive bad outcomes trip it; escalations count like
	// failures.
	bs.observe(key, true, false)
	bs.observe(key, false, true)
	bs.observe(key, true, false)
	if st := bs.snapshot(); st.Open != 1 || len(st.Tripped) != 1 || st.Tripped[0].State != "open" {
		t.Fatalf("not open after threshold: %+v", st)
	}
	if got := bs.trips.Load(); got != 1 {
		t.Fatalf("trips = %d, want 1", got)
	}

	// While open, admits are refused with the remaining cooldown.
	ok, ra := bs.admit(key)
	if ok || ra != 5 {
		t.Fatalf("open admit = (%v, %d), want (false, 5)", ok, ra)
	}
	clock = clock.Add(3 * time.Second)
	if ok, ra = bs.admit(key); ok || ra != 2 {
		t.Fatalf("open admit mid-cooldown = (%v, %d), want (false, 2)", ok, ra)
	}

	// Cooldown over: exactly one probe passes, concurrent callers wait.
	clock = clock.Add(3 * time.Second)
	if ok, _ = bs.admit(key); !ok {
		t.Fatal("half-open probe refused")
	}
	if ok, ra = bs.admit(key); ok || ra != 1 {
		t.Fatalf("second half-open caller = (%v, %d), want (false, 1)", ok, ra)
	}

	// A failed probe re-opens for another cooldown.
	bs.observe(key, true, false)
	if ok, _ = bs.admit(key); ok {
		t.Fatal("re-opened breaker admitted")
	}
	if got := bs.trips.Load(); got != 2 {
		t.Fatalf("trips = %d, want 2", got)
	}

	// A successful probe closes and prunes.
	clock = clock.Add(6 * time.Second)
	if ok, _ = bs.admit(key); !ok {
		t.Fatal("second probe refused")
	}
	bs.observe(key, false, false)
	if ok, _ = bs.admit(key); !ok {
		t.Fatal("closed breaker refused after recovery")
	}
	if len(bs.m) != 0 {
		t.Fatalf("recovered breaker not pruned: %d entries", len(bs.m))
	}
}

// TestBreakerTripsOnInjectedFailures drives the integrated path: chaos
// FailRate 1 makes every solve fail, the proposal class's breaker trips
// after the threshold, refusals carry Retry-After, and once the sabotage
// stops a half-open probe closes the breaker again.
func TestBreakerTripsOnInjectedFailures(t *testing.T) {
	old := debugLogWriter
	debugLogWriter = io.Discard
	defer func() { debugLogWriter = old }()

	s := newTestServer(t, Config{BreakerThreshold: 3, BreakerCooldown: time.Minute})
	clock := time.Unix(2000, 0)
	s.breakers.now = func() time.Time { return clock }
	h := s.Handler()
	s.SetChaos(&ChaosConfig{Seed: 7, FailRate: 1})

	body := `{"benchmark":"x264"}`
	for i := 0; i < 3; i++ {
		if w := post(t, h, "/v1/steady", body); w.Code != http.StatusInternalServerError {
			t.Fatalf("sabotaged solve %d: %d %s", i, w.Code, w.Body)
		}
	}
	w := post(t, h, "/v1/steady", body)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("tripped breaker: %d, want 503 (%s)", w.Code, w.Body)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("breaker 503 missing Retry-After")
	}
	if !strings.Contains(w.Body.String(), "circuit breaker open") {
		t.Fatalf("breaker 503 body: %s", w.Body)
	}
	st := s.Snapshot()
	if st.BreakerTrips != 1 || st.Breakers.Open != 1 {
		t.Fatalf("stats after trip: trips=%d breakers=%+v", st.BreakerTrips, st.Breakers)
	}

	// Stop injecting, pass the cooldown: the next request is the half-open
	// probe, succeeds, and the breaker closes.
	s.SetChaos(nil)
	clock = clock.Add(2 * time.Minute)
	if w := post(t, h, "/v1/steady", body); w.Code != http.StatusOK {
		t.Fatalf("half-open probe: %d %s", w.Code, w.Body)
	}
	if st := s.Snapshot(); st.Breakers.Open != 0 || st.Breakers.HalfOpen != 0 {
		t.Fatalf("breaker not closed after probe: %+v", st.Breakers)
	}
	if w := post(t, h, "/v1/steady", body); w.Code != http.StatusOK {
		t.Fatalf("recovered class: %d %s", w.Code, w.Body)
	}
}

// TestRecoverMiddleware: an injected handler panic becomes a structured
// 500, is counted, and the server keeps serving.
func TestRecoverMiddleware(t *testing.T) {
	old := debugLogWriter
	debugLogWriter = io.Discard
	defer func() { debugLogWriter = old }()

	s := newTestServer(t, Config{})
	h := s.Handler()
	s.SetChaos(&ChaosConfig{Seed: 1, PanicRate: 1})
	w := post(t, h, "/v1/steady", `{"benchmark":"x264"}`)
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("panicked request: %d %s", w.Code, w.Body)
	}
	if !strings.Contains(w.Body.String(), "internal panic (recovered)") {
		t.Fatalf("panic 500 body: %s", w.Body)
	}
	if got := s.Snapshot().PanicsRecovered; got != 1 {
		t.Fatalf("panics_recovered = %d, want 1", got)
	}
	s.SetChaos(nil)
	if w := post(t, h, "/v1/steady", `{"benchmark":"x264"}`); w.Code != http.StatusOK {
		t.Fatalf("server did not survive the panic: %d %s", w.Code, w.Body)
	}
}

// TestRetryAfterUnified: every refusal class derives its Retry-After from
// the same queue-depth hint — present on the drain 503 and on a
// registry-full 429.
func TestRetryAfterUnified(t *testing.T) {
	s := newTestServer(t, Config{Transients: 1})
	h := s.Handler()
	if w := post(t, h, "/v1/transient", `{"blade":"b0","benchmark":"x264"}`); w.Code != http.StatusCreated {
		t.Fatalf("register: %d %s", w.Code, w.Body)
	}
	w := post(t, h, "/v1/transient", `{"blade":"b1","benchmark":"x264"}`)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("registry-full: %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") != "1" {
		t.Fatalf("registry-full Retry-After = %q, want the idle-queue hint \"1\"", w.Header().Get("Retry-After"))
	}
	s.BeginDrain()
	w = post(t, h, "/v1/steady", `{"benchmark":"x264"}`)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining: %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") != "5" {
		t.Fatalf("drain Retry-After = %q, want the drain hint \"5\"", w.Header().Get("Retry-After"))
	}
}
