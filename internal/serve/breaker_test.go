package serve

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestBreakerStateMachine drives one breaker through the full closed →
// open → half-open → closed cycle on a fake clock.
func TestBreakerStateMachine(t *testing.T) {
	bs := newBreakerSet(3, 5*time.Second)
	clock := time.Unix(1000, 0)
	bs.now = func() time.Time { return clock }
	key := leaseKey{floorplan: "fp", mapping: "m", solver: "cg", resolution: "coarse"}

	// Below the threshold the breaker stays closed.
	for i := 0; i < 2; i++ {
		tok, _ := bs.admit(key)
		if tok == nil {
			t.Fatalf("closed breaker refused at bad=%d", i)
		}
		bs.settle(tok, outcomeBad)
	}
	if st := bs.snapshot(); st.Open != 0 {
		t.Fatalf("opened below threshold: %+v", st)
	}
	// A success resets the consecutive count (and prunes the clean entry).
	tok, _ := bs.admit(key)
	bs.settle(tok, outcomeGood)
	if len(bs.m) != 0 {
		t.Fatalf("clean closed breaker not pruned: %d entries", len(bs.m))
	}

	// Three consecutive bad outcomes trip it (escalation rescues count as
	// bad just like hard failures — both map to outcomeBad).
	for i := 0; i < 3; i++ {
		tok, _ := bs.admit(key)
		bs.settle(tok, outcomeBad)
	}
	if st := bs.snapshot(); st.Open != 1 || len(st.Tripped) != 1 || st.Tripped[0].State != "open" {
		t.Fatalf("not open after threshold: %+v", st)
	}
	if got := bs.trips.Load(); got != 1 {
		t.Fatalf("trips = %d, want 1", got)
	}

	// While open, admits are refused with the remaining cooldown.
	tok, ra := bs.admit(key)
	if tok != nil || ra != 5 {
		t.Fatalf("open admit = (%v, %d), want (nil, 5)", tok, ra)
	}
	clock = clock.Add(3 * time.Second)
	if tok, ra = bs.admit(key); tok != nil || ra != 2 {
		t.Fatalf("open admit mid-cooldown = (%v, %d), want (nil, 2)", tok, ra)
	}

	// Cooldown over: exactly one probe passes, concurrent callers wait.
	clock = clock.Add(3 * time.Second)
	probe, _ := bs.admit(key)
	if probe == nil || !probe.probe {
		t.Fatalf("half-open probe refused or not marked: %+v", probe)
	}
	if tok, ra = bs.admit(key); tok != nil || ra != 1 {
		t.Fatalf("second half-open caller = (%v, %d), want (nil, 1)", tok, ra)
	}

	// A failed probe re-opens for another cooldown.
	bs.settle(probe, outcomeBad)
	if tok, _ = bs.admit(key); tok != nil {
		t.Fatal("re-opened breaker admitted")
	}
	if got := bs.trips.Load(); got != 2 {
		t.Fatalf("trips = %d, want 2", got)
	}

	// A successful probe closes and prunes.
	clock = clock.Add(6 * time.Second)
	if probe, _ = bs.admit(key); probe == nil {
		t.Fatal("second probe refused")
	}
	bs.settle(probe, outcomeGood)
	if tok, _ = bs.admit(key); tok == nil {
		t.Fatal("closed breaker refused after recovery")
	}
	if len(bs.m) != 0 {
		t.Fatalf("recovered breaker not pruned: %d entries", len(bs.m))
	}
}

// TestBreakerProbeNeverLeaks: a probe settled neutrally (the solve never
// ran — admission refusal, lease failure, client cancellation) releases
// the half-open slot so the next caller becomes the probe. Before the
// ticket API an unsettled probe wedged the key in probing state forever,
// refusing every request with 503 until restart.
func TestBreakerProbeNeverLeaks(t *testing.T) {
	bs := newBreakerSet(1, 5*time.Second)
	clock := time.Unix(1000, 0)
	bs.now = func() time.Time { return clock }
	key := leaseKey{floorplan: "fp", mapping: "m", solver: "cg", resolution: "coarse"}

	tok, _ := bs.admit(key)
	bs.settle(tok, outcomeBad) // threshold 1: trips immediately
	clock = clock.Add(6 * time.Second)

	// Probe admitted, then cancelled before the solver ran.
	probe, _ := bs.admit(key)
	if probe == nil {
		t.Fatal("probe refused after cooldown")
	}
	if tok, _ := bs.admit(key); tok != nil {
		t.Fatal("second caller admitted while probe in flight")
	}
	bs.settle(probe, outcomeNeutral)
	// Settle is idempotent: a double settle (defer plus explicit) is a no-op.
	bs.settle(probe, outcomeBad)

	// The slot is free again and the state machine did not move: still
	// half-open, and the next admit becomes the new probe.
	if st := bs.snapshot(); st.HalfOpen != 1 {
		t.Fatalf("neutral probe moved the state machine: %+v", st)
	}
	probe2, _ := bs.admit(key)
	if probe2 == nil || !probe2.probe {
		t.Fatalf("slot not released after neutral settle: %+v", probe2)
	}
	bs.settle(probe2, outcomeGood)
	if tok, _ := bs.admit(key); tok == nil {
		t.Fatal("breaker did not close after the replacement probe succeeded")
	}
	if got := bs.trips.Load(); got != 1 {
		t.Fatalf("trips = %d, want 1 (neutral settles must not count)", got)
	}
}

// TestBreakerIgnoresStaleOutcomes: an outcome from a solve admitted
// before the breaker tripped must not be mistaken for the half-open
// probe's result — a stale success must not close the breaker, a stale
// failure must not re-trip it.
func TestBreakerIgnoresStaleOutcomes(t *testing.T) {
	bs := newBreakerSet(2, 5*time.Second)
	clock := time.Unix(1000, 0)
	bs.now = func() time.Time { return clock }
	key := leaseKey{floorplan: "fp", mapping: "m", solver: "cg", resolution: "coarse"}

	// A slow solve admitted while the breaker is still closed…
	stale, _ := bs.admit(key)
	// …then two fast failures trip the breaker while it is in flight.
	for i := 0; i < 2; i++ {
		tok, _ := bs.admit(key)
		bs.settle(tok, outcomeBad)
	}
	clock = clock.Add(6 * time.Second)
	probe, _ := bs.admit(key)
	if probe == nil {
		t.Fatal("probe refused after cooldown")
	}
	// The stale solve finishes (successfully) while the probe is in
	// flight: it must not clear the probe or close the breaker.
	bs.settle(stale, outcomeGood)
	if st := bs.snapshot(); st.HalfOpen != 1 {
		t.Fatalf("stale success moved the state machine: %+v", st)
	}
	if tok, _ := bs.admit(key); tok != nil {
		t.Fatal("stale success released the in-flight probe's slot")
	}
	// The real probe's failure re-opens; a second stale outcome arriving
	// now (old generation) is ignored too.
	bs.settle(probe, outcomeBad)
	if st := bs.snapshot(); st.Open != 1 {
		t.Fatalf("probe failure did not re-open: %+v", st)
	}
	trips := bs.trips.Load()
	stale2 := &breakerTicket{key: key, gen: 0}
	bs.settle(stale2, outcomeBad)
	if got := bs.trips.Load(); got != trips {
		t.Fatalf("stale failure double-counted: trips %d → %d", trips, got)
	}
}

// TestBreakerTripsOnInjectedFailures drives the integrated path: chaos
// FailRate 1 makes every solve fail, the proposal class's breaker trips
// after the threshold, refusals carry Retry-After, and once the sabotage
// stops a half-open probe closes the breaker again.
func TestBreakerTripsOnInjectedFailures(t *testing.T) {
	old := debugLogWriter
	debugLogWriter = io.Discard
	defer func() { debugLogWriter = old }()

	s := newTestServer(t, Config{BreakerThreshold: 3, BreakerCooldown: time.Minute})
	clock := time.Unix(2000, 0)
	s.breakers.now = func() time.Time { return clock }
	h := s.Handler()
	s.SetChaos(&ChaosConfig{Seed: 7, FailRate: 1})

	body := `{"benchmark":"x264"}`
	for i := 0; i < 3; i++ {
		if w := post(t, h, "/v1/steady", body); w.Code != http.StatusInternalServerError {
			t.Fatalf("sabotaged solve %d: %d %s", i, w.Code, w.Body)
		}
	}
	w := post(t, h, "/v1/steady", body)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("tripped breaker: %d, want 503 (%s)", w.Code, w.Body)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("breaker 503 missing Retry-After")
	}
	if !strings.Contains(w.Body.String(), "circuit breaker open") {
		t.Fatalf("breaker 503 body: %s", w.Body)
	}
	st := s.Snapshot()
	if st.BreakerTrips != 1 || st.Breakers.Open != 1 {
		t.Fatalf("stats after trip: trips=%d breakers=%+v", st.BreakerTrips, st.Breakers)
	}

	// Stop injecting, pass the cooldown: the next request is the half-open
	// probe, succeeds, and the breaker closes.
	s.SetChaos(nil)
	clock = clock.Add(2 * time.Minute)
	if w := post(t, h, "/v1/steady", body); w.Code != http.StatusOK {
		t.Fatalf("half-open probe: %d %s", w.Code, w.Body)
	}
	if st := s.Snapshot(); st.Breakers.Open != 0 || st.Breakers.HalfOpen != 0 {
		t.Fatalf("breaker not closed after probe: %+v", st.Breakers)
	}
	if w := post(t, h, "/v1/steady", body); w.Code != http.StatusOK {
		t.Fatalf("recovered class: %d %s", w.Code, w.Body)
	}
}

// TestBreakerSurvivesCancelledProbe drives the leak end to end: trip a
// class, wait out the cooldown, then send the half-open probe with an
// already-cancelled request context. The cancelled probe must release
// its slot (neutral settle via the deferred ticket), so the next request
// becomes the probe and closes the breaker — before the fix the class
// answered 503 forever.
func TestBreakerSurvivesCancelledProbe(t *testing.T) {
	old := debugLogWriter
	debugLogWriter = io.Discard
	defer func() { debugLogWriter = old }()

	s := newTestServer(t, Config{BreakerThreshold: 2, BreakerCooldown: time.Minute})
	clock := time.Unix(3000, 0)
	s.breakers.now = func() time.Time { return clock }
	h := s.Handler()
	s.SetChaos(&ChaosConfig{Seed: 11, FailRate: 1})

	body := `{"benchmark":"x264"}`
	for i := 0; i < 2; i++ {
		if w := post(t, h, "/v1/steady", body); w.Code != http.StatusInternalServerError {
			t.Fatalf("sabotaged solve %d: %d %s", i, w.Code, w.Body)
		}
	}
	s.SetChaos(nil)
	clock = clock.Add(2 * time.Minute)

	// The probe arrives already cancelled: the solver never gets a say.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/steady", strings.NewReader(body)).WithContext(ctx)
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code == http.StatusOK {
		t.Fatalf("cancelled probe succeeded: %s", w.Body)
	}

	// The class must not be wedged: the next request is the new probe,
	// succeeds, and closes the breaker.
	if w := post(t, h, "/v1/steady", body); w.Code != http.StatusOK {
		t.Fatalf("class wedged after cancelled probe: %d %s", w.Code, w.Body)
	}
	if st := s.Snapshot(); st.Breakers.Open != 0 || st.Breakers.HalfOpen != 0 {
		t.Fatalf("breaker not closed: %+v", st.Breakers)
	}
	if got := s.Snapshot().BreakerTrips; got != 1 {
		t.Fatalf("trips = %d, want 1 (cancellations must not count)", got)
	}
}

// TestRecoverMiddleware: an injected handler panic becomes a structured
// 500, is counted, and the server keeps serving.
func TestRecoverMiddleware(t *testing.T) {
	old := debugLogWriter
	debugLogWriter = io.Discard
	defer func() { debugLogWriter = old }()

	s := newTestServer(t, Config{})
	h := s.Handler()
	s.SetChaos(&ChaosConfig{Seed: 1, PanicRate: 1})
	w := post(t, h, "/v1/steady", `{"benchmark":"x264"}`)
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("panicked request: %d %s", w.Code, w.Body)
	}
	if !strings.Contains(w.Body.String(), "internal panic (recovered)") {
		t.Fatalf("panic 500 body: %s", w.Body)
	}
	if got := s.Snapshot().PanicsRecovered; got != 1 {
		t.Fatalf("panics_recovered = %d, want 1", got)
	}
	s.SetChaos(nil)
	if w := post(t, h, "/v1/steady", `{"benchmark":"x264"}`); w.Code != http.StatusOK {
		t.Fatalf("server did not survive the panic: %d %s", w.Code, w.Body)
	}
}

// TestRetryAfterUnified: every refusal class derives its Retry-After from
// the same queue-depth hint — present on the drain 503 and on a
// registry-full 429.
func TestRetryAfterUnified(t *testing.T) {
	s := newTestServer(t, Config{Transients: 1})
	h := s.Handler()
	if w := post(t, h, "/v1/transient", `{"blade":"b0","benchmark":"x264"}`); w.Code != http.StatusCreated {
		t.Fatalf("register: %d %s", w.Code, w.Body)
	}
	w := post(t, h, "/v1/transient", `{"blade":"b1","benchmark":"x264"}`)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("registry-full: %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") != "1" {
		t.Fatalf("registry-full Retry-After = %q, want the idle-queue hint \"1\"", w.Header().Get("Retry-After"))
	}
	s.BeginDrain()
	w = post(t, h, "/v1/steady", `{"benchmark":"x264"}`)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining: %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") != "5" {
		t.Fatalf("drain Retry-After = %q, want the drain hint \"5\"", w.Header().Get("Retry-After"))
	}
}
