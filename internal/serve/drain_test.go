package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestDrainUnderLoad exercises the full shutdown sequence against a real
// listener while a long transient chunk is in flight: BeginDrain must
// refuse new work with 503, http.Server.Shutdown must wait for the chunk
// to complete normally, Close must retire every session, and the whole
// dance must leak no goroutines.
func TestDrainUnderLoad(t *testing.T) {
	before := runtime.NumGoroutine()

	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	serveDone := make(chan error, 1)
	go func() { serveDone <- httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	client := &http.Client{}

	postJSON := func(path, body string) (*http.Response, error) {
		return client.Post(base+path, "application/json", strings.NewReader(body))
	}

	// Register a blade and launch a long step chunk: 400 coarse steps keep
	// the handler busy well past the drain flip.
	resp, err := postJSON("/v1/transient", `{"blade":"b0","benchmark":"x264"}`)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d %s", resp.StatusCode, drainBody(t, resp))
	}
	resp.Body.Close()

	steps := make([]string, 400)
	for i := range steps {
		steps[i] = "{}"
	}
	chunk := fmt.Sprintf(`{"dt_s":0.05,"steps":[%s]}`, strings.Join(steps, ","))
	chunkDone := make(chan error, 1)
	var chunkSamples int
	go func() {
		resp, err := postJSON("/v1/transient/b0/step", chunk)
		if err != nil {
			chunkDone <- err
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			chunkDone <- fmt.Errorf("chunk status %d", resp.StatusCode)
			return
		}
		var out struct {
			Samples []TransientSample `json:"samples"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			chunkDone <- err
			return
		}
		chunkSamples = len(out.Samples)
		chunkDone <- nil
	}()

	// Wait until the chunk is actually solving, then flip to drain.
	deadline := time.Now().Add(5 * time.Second)
	for s.Snapshot().InFlight < 1 {
		if time.Now().After(deadline) {
			t.Fatal("chunk never went in flight")
		}
		time.Sleep(2 * time.Millisecond)
	}
	s.BeginDrain()

	// New work is cleanly refused while the chunk still runs.
	resp, err = postJSON("/v1/steady", `{"benchmark":"canneal"}`)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining steady: %d, want 503 (%s)", resp.StatusCode, drainBody(t, resp))
	}
	resp.Body.Close()

	// Shutdown waits out the in-flight chunk.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-chunkDone; err != nil {
		t.Fatalf("in-flight chunk: %v", err)
	}
	if chunkSamples != 400 {
		t.Fatalf("chunk completed %d of 400 samples", chunkSamples)
	}
	if err := <-serveDone; err != http.ErrServerClosed {
		t.Fatalf("Serve: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := s.leases.len(); got != 0 {
		t.Fatalf("%d sessions survive Close", got)
	}
	if got := s.trans.len(); got != 0 {
		t.Fatalf("%d transient blades survive Close", got)
	}

	// No goroutine leaks: allow a small slack for the runtime's own
	// background goroutines, with a deadline loop for stragglers.
	client.CloseIdleConnections()
	leakDeadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(leakDeadline) {
			t.Fatalf("goroutine leak: %d before, %d after drain", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
