package serve

import (
	"bytes"
	"context"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Client is the retry-disciplined HTTP client thermload and the tests
// use against a thermservd: capped exponential backoff with full jitter,
// honoring the server's Retry-After hint, with deadline propagation —
// the client never sleeps past its context deadline, it returns the last
// refusal instead.
//
// Retries are reserved for outcomes the server has declared retryable:
// transport errors, 429 (admission backpressure), and 503 (drain or an
// open circuit breaker). Anything else — including 500s — is returned to
// the caller immediately: a deterministic solver will fail the retry
// exactly the same way, and retrying it would just burn admission slots.
//
// The jitter PRNG is seeded, so a load run replays the same backoff
// schedule; a Client is safe for concurrent use.
type Client struct {
	// HTTP is the transport (nil = http.DefaultClient semantics with a
	// fresh client).
	HTTP *http.Client
	// MaxRetries caps retry attempts per request (not counting the first
	// try). Zero means no retries.
	MaxRetries int
	// BaseDelay/MaxDelay shape the backoff: attempt k waits a uniform
	// random duration in [0, min(MaxDelay, BaseDelay·2^k)] (full jitter),
	// raised to the server's Retry-After hint when that is larger (and
	// itself capped at MaxDelay). Zeroes default to 100 ms / 2 s.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// OnRetry, when set, observes every scheduled retry.
	OnRetry func(attempt int, status int, delay time.Duration)

	mu      sync.Mutex
	rng     *rand.Rand
	retries atomic.Int64
}

// NewClient returns a retrying client with the default backoff envelope
// and a jitter PRNG fixed by seed.
func NewClient(seed int64) *Client {
	return &Client{
		HTTP:       &http.Client{},
		MaxRetries: 4,
		rng:        rand.New(rand.NewSource(seed)),
	}
}

// Retries returns the cumulative number of retries the client has spent.
func (c *Client) Retries() int64 { return c.retries.Load() }

// retryable reports whether a status code is worth retrying.
func retryable(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// backoff draws the attempt's delay: full jitter over the capped
// exponential envelope, raised to the server's Retry-After when given.
func (c *Client) backoff(attempt int, retryAfter time.Duration) time.Duration {
	base, max := c.BaseDelay, c.MaxDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if max <= 0 {
		max = 2 * time.Second
	}
	envelope := base << uint(attempt)
	if envelope > max || envelope <= 0 {
		envelope = max
	}
	c.mu.Lock()
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(1))
	}
	d := time.Duration(c.rng.Int63n(int64(envelope) + 1))
	c.mu.Unlock()
	if retryAfter > d {
		d = retryAfter
	}
	if d > max {
		d = max
	}
	return d
}

// PostJSON posts body to url, retrying refusals within the backoff
// envelope and the context deadline. It returns the final response (the
// caller owns Body) or the final transport error.
func (c *Client) PostJSON(ctx context.Context, url string, body []byte) (*http.Response, error) {
	httpc := c.HTTP
	if httpc == nil {
		httpc = &http.Client{}
	}
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := httpc.Do(req)
		var status int
		var retryAfter time.Duration
		if err == nil {
			if !retryable(resp.StatusCode) || attempt >= c.MaxRetries {
				return resp, nil
			}
			status = resp.StatusCode
			if secs, perr := strconv.Atoi(resp.Header.Get("Retry-After")); perr == nil && secs > 0 {
				retryAfter = time.Duration(secs) * time.Second
			}
		} else {
			if ctx.Err() != nil || attempt >= c.MaxRetries {
				return nil, err
			}
		}
		delay := c.backoff(attempt, retryAfter)
		// Deadline propagation: a sleep that cannot complete before the
		// deadline is pointless — surface the live refusal instead of
		// hammering a server that asked us to wait.
		if dl, ok := ctx.Deadline(); ok && time.Until(dl) < delay {
			if err != nil {
				return nil, err
			}
			return resp, nil
		}
		if resp != nil {
			resp.Body.Close()
		}
		c.retries.Add(1)
		if c.OnRetry != nil {
			c.OnRetry(attempt+1, status, delay)
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}
