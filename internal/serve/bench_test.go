package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// BenchmarkServeSteady measures the three /v1/steady service tiers at
// medium resolution: a memo hit (the warm-cache product), a warm-session
// miss (memo cleared, session cached — pays a solve but no system build),
// and a cold miss (everything rebuilt). The hit/cold ratio is the PR's
// ≥50× acceptance bar.
func BenchmarkServeSteady(b *testing.B) {
	body := `{"benchmark":"x264"}`
	mk := func(b *testing.B) (*Server, http.Handler) {
		s, err := New(Config{Resolution: experiments.Medium, Threads: 1, Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { s.Close() })
		return s, s.Handler()
	}
	do := func(b *testing.B, h http.Handler, wantCache string) {
		req := httptest.NewRequest(http.MethodPost, "/v1/steady", strings.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d: %s", w.Code, w.Body)
		}
		if wantCache != "" && w.Header().Get("X-Cache") != wantCache {
			b.Fatalf("X-Cache %q, want %q", w.Header().Get("X-Cache"), wantCache)
		}
	}

	b.Run("memo-hit", func(b *testing.B) {
		s, h := mk(b)
		_ = s
		do(b, h, "miss") // prime
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			do(b, h, "hit")
		}
	})
	b.Run("session-warm-miss", func(b *testing.B) {
		s, h := mk(b)
		do(b, h, "miss") // build the session
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			s.memo.reset()
			b.StartTimer()
			do(b, h, "miss")
		}
	})
	b.Run("cold-miss", func(b *testing.B) {
		s, h := mk(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			s.ResetCaches()
			b.StartTimer()
			do(b, h, "miss")
		}
	})
}

// BenchmarkServeLoad drives the deterministic open-loop client against a
// live server over a real socket and reports service-level percentiles,
// sustained throughput, and warm-cache hit rate — uniform vs Zipf-skewed
// key popularity. These rows are the BENCH_8.json load table.
func BenchmarkServeLoad(b *testing.B) {
	for _, tc := range []struct {
		name string
		skew float64
	}{
		{"skew=uniform", 0},
		{"skew=zipf1.2", 1.2},
	} {
		b.Run(tc.name, func(b *testing.B) {
			s, err := New(Config{})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()

			var last *LoadReport
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := RunLoad(context.Background(), LoadConfig{
					BaseURL:     ts.URL,
					Requests:    300,
					Concurrency: 8,
					Keys:        16,
					Skew:        tc.skew,
					Seed:        42,
				})
				if err != nil {
					b.Fatal(err)
				}
				if rep.Errors > 0 {
					b.Fatalf("load errors: %+v", rep)
				}
				last = rep
			}
			b.StopTimer()
			if last != nil {
				b.ReportMetric(last.P50Ms, "p50_ms")
				b.ReportMetric(last.P99Ms, "p99_ms")
				b.ReportMetric(last.QPS, "qps")
				b.ReportMetric(last.HitRate, "hit_rate")
				b.ReportMetric(float64(last.Completed), "completed")
			}
		})
	}
}

// BenchmarkServeTransientStep measures one transient step through the
// service path (validation + admission + step + sample), coarse grid.
func BenchmarkServeTransientStep(b *testing.B) {
	s, err := New(Config{MaxSteps: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	h := s.Handler()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/transient",
		strings.NewReader(`{"blade":"b0","benchmark":"x264"}`)))
	if w.Code != http.StatusCreated {
		b.Fatalf("register: %d %s", w.Code, w.Body)
	}
	body := `{"dt_s":0.05,"steps":[{}]}`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/transient/b0/step", strings.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("step: %d %s", w.Code, w.Body)
		}
	}
}
