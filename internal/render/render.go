// Package render serializes thermal maps and experiment series: ASCII heat
// maps for terminals, CSV for plotting, and binary PGM images.
package render

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/floorplan"
)

// ramp is the ASCII intensity ramp, cold to hot.
const ramp = " .:-=+*#%@"

// ASCIIMap writes an ASCII heat map of temps (row-major on grid) to w,
// normalizing colors between the map's min and max. A legend with the
// extremes is appended.
func ASCIIMap(w io.Writer, grid floorplan.Grid, temps []float64) error {
	if len(temps) != grid.Cells() {
		return fmt.Errorf("render: %d temps for %d cells", len(temps), grid.Cells())
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, t := range temps {
		lo = math.Min(lo, t)
		hi = math.Max(hi, t)
	}
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	var sb strings.Builder
	for iy := 0; iy < grid.NY; iy++ {
		for ix := 0; ix < grid.NX; ix++ {
			t := temps[grid.Index(ix, iy)]
			level := int((t - lo) / span * float64(len(ramp)-1))
			if level < 0 {
				level = 0
			}
			if level >= len(ramp) {
				level = len(ramp) - 1
			}
			sb.WriteByte(ramp[level])
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "min %.1f °C ('%c')  max %.1f °C ('%c')\n", lo, ramp[0], hi, ramp[len(ramp)-1])
	_, err := io.WriteString(w, sb.String())
	return err
}

// CSVMap writes the map as x_mm,y_mm,temp_C rows with a header.
func CSVMap(w io.Writer, grid floorplan.Grid, temps []float64) error {
	if len(temps) != grid.Cells() {
		return fmt.Errorf("render: %d temps for %d cells", len(temps), grid.Cells())
	}
	var sb strings.Builder
	sb.WriteString("x_mm,y_mm,temp_c\n")
	for iy := 0; iy < grid.NY; iy++ {
		for ix := 0; ix < grid.NX; ix++ {
			cx, cy := grid.CellCenter(ix, iy)
			fmt.Fprintf(&sb, "%.3f,%.3f,%.3f\n", cx*1e3, cy*1e3, temps[grid.Index(ix, iy)])
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// PGM writes a binary (P5) PGM image of the map scaled to [min,max]→[0,255].
func PGM(w io.Writer, grid floorplan.Grid, temps []float64) error {
	if len(temps) != grid.Cells() {
		return fmt.Errorf("render: %d temps for %d cells", len(temps), grid.Cells())
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, t := range temps {
		lo = math.Min(lo, t)
		hi = math.Max(hi, t)
	}
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", grid.NX, grid.NY); err != nil {
		return err
	}
	buf := make([]byte, grid.Cells())
	for i, t := range temps {
		buf[i] = byte(math.Round((t - lo) / span * 255))
	}
	_, err := w.Write(buf)
	return err
}

// Table renders an aligned text table: header row plus data rows.
func Table(w io.Writer, header []string, rows [][]string) error {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		return strings.TrimRight(sb.String(), " ")
	}
	var sb strings.Builder
	sb.WriteString(line(header))
	sb.WriteByte('\n')
	sb.WriteString(strings.Repeat("-", len(line(header))))
	sb.WriteByte('\n')
	for _, r := range rows {
		sb.WriteString(line(r))
		sb.WriteByte('\n')
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
