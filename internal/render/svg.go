package render

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/floorplan"
)

// SVGOptions configures the SVG heat-map writer.
type SVGOptions struct {
	// CellPx is the rendered size of one grid cell in pixels (default 8).
	CellPx int
	// MinC/MaxC pin the color scale; when both are zero the map's own
	// extremes are used.
	MinC, MaxC float64
	// Overlay draws the outlines of these rectangles (grid frame), e.g.
	// the die and core outlines.
	Overlay []floorplan.Rect
}

// SVGMap writes a self-contained SVG heat map of temps on grid, using a
// blue→red ramp with an embedded min/max legend.
func SVGMap(w io.Writer, grid floorplan.Grid, temps []float64, opt SVGOptions) error {
	if len(temps) != grid.Cells() {
		return fmt.Errorf("render: %d temps for %d cells", len(temps), grid.Cells())
	}
	if opt.CellPx <= 0 {
		opt.CellPx = 8
	}
	lo, hi := opt.MinC, opt.MaxC
	if lo == 0 && hi == 0 {
		lo, hi = math.Inf(1), math.Inf(-1)
		for _, t := range temps {
			lo = math.Min(lo, t)
			hi = math.Max(hi, t)
		}
	}
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	widthPx := grid.NX * opt.CellPx
	heightPx := grid.NY*opt.CellPx + 20 // legend strip

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d">`+"\n", widthPx, heightPx)
	for iy := 0; iy < grid.NY; iy++ {
		for ix := 0; ix < grid.NX; ix++ {
			t := temps[grid.Index(ix, iy)]
			r, g, b := tempColor((t - lo) / span)
			fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="%d" height="%d" fill="rgb(%d,%d,%d)"/>`+"\n",
				ix*opt.CellPx, iy*opt.CellPx, opt.CellPx, opt.CellPx, r, g, b)
		}
	}
	// Overlays: convert grid-frame rectangles to pixels.
	for _, o := range opt.Overlay {
		x := (o.X - grid.OriginX) / grid.DX * float64(opt.CellPx)
		y := (o.Y - grid.OriginY) / grid.DY * float64(opt.CellPx)
		wp := o.W / grid.DX * float64(opt.CellPx)
		hp := o.H / grid.DY * float64(opt.CellPx)
		fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="none" stroke="black" stroke-width="1"/>`+"\n",
			x, y, wp, hp)
	}
	fmt.Fprintf(&sb, `<text x="2" y="%d" font-family="monospace" font-size="12">%.1f–%.1f °C</text>`+"\n",
		grid.NY*opt.CellPx+14, lo, hi)
	sb.WriteString("</svg>\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// tempColor maps a normalized value in [0,1] onto a blue→cyan→yellow→red
// ramp.
func tempColor(v float64) (r, g, b int) {
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	switch {
	case v < 1.0/3:
		t := v * 3
		return 0, int(255 * t), 255
	case v < 2.0/3:
		t := (v - 1.0/3) * 3
		return int(255 * t), 255, int(255 * (1 - t))
	default:
		t := (v - 2.0/3) * 3
		return 255, int(255 * (1 - t)), 0
	}
}
