package render

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/floorplan"
)

func TestSVGMap(t *testing.T) {
	var buf bytes.Buffer
	g := grid()
	if err := SVGMap(&buf, g, temps(), SVGOptions{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, `<svg xmlns=`) || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatal("not a well-formed SVG envelope")
	}
	// One rect per cell plus the legend text.
	if n := strings.Count(out, "<rect "); n != g.Cells() {
		t.Fatalf("got %d rects, want %d", n, g.Cells())
	}
	if !strings.Contains(out, "40.0–51.0 °C") {
		t.Fatal("legend missing")
	}
}

func TestSVGMapOverlay(t *testing.T) {
	var buf bytes.Buffer
	g := grid()
	opt := SVGOptions{Overlay: []floorplan.Rect{{X: 1, Y: 1, W: 2, H: 1}}}
	if err := SVGMap(&buf, g, temps(), opt); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), `stroke="black"`); n != 1 {
		t.Fatalf("got %d overlays", n)
	}
}

func TestSVGMapPinnedScale(t *testing.T) {
	var buf bytes.Buffer
	if err := SVGMap(&buf, grid(), temps(), SVGOptions{MinC: 0, MaxC: 100, CellPx: 4}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0.0–100.0 °C") {
		t.Fatal("pinned scale not honored")
	}
}

func TestSVGMapErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := SVGMap(&buf, grid(), nil, SVGOptions{}); err == nil {
		t.Fatal("nil temps must error")
	}
}

func TestTempColorRamp(t *testing.T) {
	// Cold end: blue; hot end: red; midpoints stay in gamut.
	r, g, b := tempColor(0)
	if r != 0 || b != 255 {
		t.Fatalf("cold color rgb(%d,%d,%d)", r, g, b)
	}
	r, g, b = tempColor(1)
	if r != 255 || b != 0 {
		t.Fatalf("hot color rgb(%d,%d,%d)", r, g, b)
	}
	for v := -0.5; v <= 1.5; v += 0.05 {
		r, g, b = tempColor(v)
		for _, c := range []int{r, g, b} {
			if c < 0 || c > 255 {
				t.Fatalf("v=%v out-of-gamut rgb(%d,%d,%d)", v, r, g, b)
			}
		}
	}
}
