package render

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/floorplan"
)

func grid() floorplan.Grid { return floorplan.NewGrid(4, 3, 4, 3) }

func temps() []float64 {
	t := make([]float64, 12)
	for i := range t {
		t[i] = 40 + float64(i)
	}
	return t
}

func TestASCIIMap(t *testing.T) {
	var buf bytes.Buffer
	if err := ASCIIMap(&buf, grid(), temps()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 { // 3 rows + legend
		t.Fatalf("got %d lines", len(lines))
	}
	for _, l := range lines[:3] {
		if len(l) != 4 {
			t.Fatalf("row %q has wrong width", l)
		}
	}
	if !strings.Contains(lines[3], "min 40.0") || !strings.Contains(lines[3], "max 51.0") {
		t.Fatalf("legend wrong: %q", lines[3])
	}
	if err := ASCIIMap(&buf, grid(), make([]float64, 2)); err == nil {
		t.Fatal("length mismatch must error")
	}
}

func TestASCIIMapFlat(t *testing.T) {
	var buf bytes.Buffer
	flat := make([]float64, 12)
	for i := range flat {
		flat[i] = 50
	}
	if err := ASCIIMap(&buf, grid(), flat); err != nil {
		t.Fatal(err)
	}
}

func TestCSVMap(t *testing.T) {
	var buf bytes.Buffer
	if err := CSVMap(&buf, grid(), temps()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 13 { // header + 12 cells
		t.Fatalf("got %d lines", len(lines))
	}
	if lines[0] != "x_mm,y_mm,temp_c" {
		t.Fatalf("header %q", lines[0])
	}
	if err := CSVMap(&buf, grid(), nil); err == nil {
		t.Fatal("nil temps must error")
	}
}

func TestPGM(t *testing.T) {
	var buf bytes.Buffer
	if err := PGM(&buf, grid(), temps()); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !bytes.HasPrefix(out, []byte("P5\n4 3\n255\n")) {
		t.Fatalf("bad PGM header: %q", out[:12])
	}
	pix := out[len("P5\n4 3\n255\n"):]
	if len(pix) != 12 {
		t.Fatalf("got %d pixels", len(pix))
	}
	if pix[0] != 0 || pix[11] != 255 {
		t.Fatalf("scaling wrong: first %d last %d", pix[0], pix[11])
	}
	if err := PGM(&buf, grid(), nil); err == nil {
		t.Fatal("nil temps must error")
	}
}

func TestTable(t *testing.T) {
	var buf bytes.Buffer
	err := Table(&buf, []string{"name", "v"}, [][]string{{"alpha", "1"}, {"b", "22"}})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "alpha  1") || !strings.Contains(out, "b      22") {
		t.Fatalf("table misaligned:\n%s", out)
	}
	if !strings.Contains(out, "-----") {
		t.Fatal("missing separator")
	}
}
