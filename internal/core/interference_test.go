package core

import (
	"testing"

	"repro/internal/workload"
)

func TestPlanMultiInterferenceNeverCheaper(t *testing.T) {
	// Interference can only shrink the feasible set, so the
	// interference-aware plan never grants fewer resources than needed:
	// its power is at least the naive plan's.
	apps := []AppSpec{
		spec(t, "canneal", workload.QoS3x),
		spec(t, "streamcluster", workload.QoS3x),
	}
	naive, err := PlanMulti(apps)
	if err != nil {
		t.Fatal(err)
	}
	aware, err := PlanMultiInterference(apps, workload.DefaultInterference())
	if err != nil {
		t.Fatal(err)
	}
	if aware.TotalPowerW < naive.TotalPowerW-1e-9 {
		t.Fatalf("interference-aware plan %.2f W cheaper than naive %.2f W",
			aware.TotalPowerW, naive.TotalPowerW)
	}
	// Every assignment must satisfy the co-run-adjusted QoS.
	im := workload.DefaultInterference()
	for i, a := range aware.Assignments {
		var others []workload.Benchmark
		for j, o := range aware.Assignments {
			if j != i {
				others = append(others, o.App.Bench)
			}
		}
		if !im.CoRunSatisfied(a.App.QoS, a.App.Bench, a.Config, others) {
			t.Fatalf("%s: co-run QoS violated by %v", a.App.Bench.Name, a.Config)
		}
	}
}

func TestPlanMultiInterferenceCanGrantMoreCores(t *testing.T) {
	// Two heavy memory-bound apps at a moderately tight QoS: the
	// interference-aware planner should spend more resources (cores or
	// frequency) than the naive one for at least some pressure level.
	apps := []AppSpec{
		spec(t, "canneal", workload.QoS2x),
		spec(t, "streamcluster", workload.QoS2x),
	}
	naive, err := PlanMulti(apps)
	if err != nil {
		t.Fatal(err)
	}
	aware, err := PlanMultiInterference(apps, workload.DefaultInterference())
	if err != nil {
		t.Fatal(err)
	}
	if aware.TotalPowerW < naive.TotalPowerW-1e-9 {
		t.Fatal("aware plan cannot be cheaper")
	}
}

func TestPlanMultiInterferenceInfeasible(t *testing.T) {
	// An extreme interference model can make a feasible pair infeasible.
	apps := []AppSpec{
		spec(t, "canneal", workload.QoS1x),
		spec(t, "streamcluster", workload.QoS3x),
	}
	if _, err := PlanMulti(apps); err == nil {
		// canneal at 1x needs nearly the whole machine; if the naive plan
		// is feasible, crushing interference must break it.
		harsh := workload.InterferenceModel{LLCWeight: 1.5, MemBWWeight: 1.5}
		if _, err := PlanMultiInterference(apps, harsh); err == nil {
			t.Fatal("harsh interference should make the pair infeasible")
		}
	}
}
