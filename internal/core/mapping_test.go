package core

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/floorplan"
	"repro/internal/power"
	"repro/internal/workload"
)

func TestSelectConfigMinimizesPower(t *testing.T) {
	for _, b := range workload.All() {
		prof := workload.NewProfile(b)
		for _, q := range []workload.QoS{workload.QoS1x, workload.QoS2x, workload.QoS3x} {
			cfg, err := SelectConfig(prof, q)
			if err != nil {
				t.Fatalf("%s @%s: %v", b.Name, q, err)
			}
			if !q.Satisfied(b, cfg) {
				t.Fatalf("%s @%s: selected %v violates QoS", b.Name, q, cfg)
			}
			// No satisfying configuration may be cheaper.
			chosen := b.PackagePower(cfg, power.POLL)
			for _, e := range prof.Entries {
				if q.Satisfied(b, e.Config) && e.Power < chosen-1e-9 {
					t.Fatalf("%s @%s: %v (%.1f W) cheaper than selected %v (%.1f W)",
						b.Name, q, e.Config, e.Power, cfg, chosen)
				}
			}
		}
	}
}

func TestSelectConfigQoSMonotone(t *testing.T) {
	// Looser QoS must never require more power.
	for _, b := range workload.All() {
		prof := workload.NewProfile(b)
		c1, _ := SelectConfig(prof, workload.QoS1x)
		c2, _ := SelectConfig(prof, workload.QoS2x)
		c3, _ := SelectConfig(prof, workload.QoS3x)
		p1 := b.PackagePower(c1, power.POLL)
		p2 := b.PackagePower(c2, power.POLL)
		p3 := b.PackagePower(c3, power.POLL)
		if p2 > p1+1e-9 || p3 > p2+1e-9 {
			t.Fatalf("%s: power not monotone across QoS: %.1f %.1f %.1f", b.Name, p1, p2, p3)
		}
	}
}

func TestSelectConfigAtQoS1xUsesFullMachine(t *testing.T) {
	// §VIII-A: when no degradation is allowed, all approaches run at fmax
	// with the maximum cores/threads for at least some benchmarks; every
	// selection must still satisfy 1x.
	for _, b := range workload.All() {
		cfg, err := SelectConfig(workload.NewProfile(b), workload.QoS1x)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if !workload.QoS1x.Satisfied(b, cfg) {
			t.Fatalf("%s: 1x violated by %v", b.Name, cfg)
		}
	}
}

func TestMapThreadsRowExclusive(t *testing.T) {
	// canneal tolerates 200 µs → C6 idles → row-exclusive mapping.
	b, _ := workload.ByName("canneal")
	cfg := workload.Config{Cores: 4, Threads: 8, Freq: power.FMin}
	m, err := MapThreads(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.IdleState == power.POLL {
		t.Fatalf("canneal should get a deep idle state, got %v", m.IdleState)
	}
	if got := MaxActivePerRow(m.ActiveCores); got != 1 {
		t.Fatalf("row-exclusive mapping has %d actives on one row", got)
	}
	if len(m.ActiveCores) != 4 {
		t.Fatalf("active count %d", len(m.ActiveCores))
	}
}

func TestMapThreadsPollBalanced(t *testing.T) {
	// raytrace tolerates only 1 µs → POLL idles → corner balancing.
	b, _ := workload.ByName("raytrace")
	cfg := workload.Config{Cores: 4, Threads: 4, Freq: power.FMax}
	m, err := MapThreads(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.IdleState != power.POLL {
		t.Fatalf("raytrace should be stuck at POLL, got %v", m.IdleState)
	}
	// Corner mapping: rows 0 and 3 carry the actives.
	rows := ActiveRowsHistogram(m.ActiveCores)
	if rows[0] != 2 || rows[3] != 2 || rows[1] != 0 || rows[2] != 0 {
		t.Fatalf("corner mapping expected, got row histogram %v", rows)
	}
}

func TestMapThreadsFullMachine(t *testing.T) {
	b, _ := workload.ByName("ferret")
	cfg := workload.Config{Cores: 8, Threads: 16, Freq: power.FMax}
	m, err := MapThreads(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.ActiveCores) != 8 {
		t.Fatalf("full machine should use all 8 cores")
	}
	seen := map[int]bool{}
	for _, c := range m.ActiveCores {
		if c < 0 || c >= floorplan.NumCores || seen[c] {
			t.Fatalf("bad active set %v", m.ActiveCores)
		}
		seen[c] = true
	}
}

func TestMapThreadsInvalidConfig(t *testing.T) {
	b, _ := workload.ByName("vips")
	if _, err := MapThreads(b, workload.Config{Cores: 9, Threads: 9, Freq: power.FMax}); err == nil {
		t.Fatal("invalid config must error")
	}
}

func TestPlanEndToEnd(t *testing.T) {
	for _, b := range workload.All() {
		m, err := Plan(b, workload.QoS2x)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if len(m.ActiveCores) != m.Config.Cores {
			t.Fatalf("%s: %d actives for %d cores", b.Name, len(m.ActiveCores), m.Config.Cores)
		}
	}
}

func TestPackageState(t *testing.T) {
	b, _ := workload.ByName("canneal")
	m, err := Plan(b, workload.QoS3x)
	if err != nil {
		t.Fatal(err)
	}
	st := PackageState(b, m)
	var actives int
	for i, c := range st.Cores {
		if c.Active {
			actives++
			if c.DynWatts <= 0 {
				t.Fatalf("active core %d has no dynamic power", i)
			}
		} else if c.Idle != m.IdleState {
			t.Fatalf("idle core %d in %v, want %v", i, c.Idle, m.IdleState)
		}
	}
	if actives != m.Config.Cores {
		t.Fatalf("%d actives, want %d", actives, m.Config.Cores)
	}
	if st.Freq != m.Config.Freq {
		t.Fatal("frequency not propagated")
	}
}

func TestComponentHeatFlux(t *testing.T) {
	fp := floorplan.BroadwellEP()
	hf, err := ComponentHeatFlux(fp, map[string]float64{"Core1": 7.2, "LLC": 2})
	if err != nil {
		t.Fatal(err)
	}
	blk, _ := fp.Block("Core1")
	want := 7.2 / blk.Rect.Area()
	if hf["Core1"] != want {
		t.Fatalf("Core1 flux %v want %v", hf["Core1"], want)
	}
	// Cores are far denser heat sources than the LLC.
	if hf["Core1"] <= hf["LLC"] {
		t.Fatal("core flux should exceed LLC flux")
	}
	if _, err := ComponentHeatFlux(fp, map[string]float64{"nope": 1}); err == nil {
		t.Fatal("unknown block must error")
	}
}

func TestIdleToleranceState(t *testing.T) {
	if IdleToleranceState(0) != power.POLL {
		t.Fatal("zero tolerance must stay at POLL")
	}
	if IdleToleranceState(time.Millisecond) != power.C6 {
		t.Fatal("1 ms tolerance should reach C6")
	}
}

// Property: for any core count 1..4 with a deep idle state, the proposed
// mapping never places two actives on the same row; and the active set is
// always distinct and in range.
func TestRowExclusiveProperty(t *testing.T) {
	b, _ := workload.ByName("streamcluster") // 200 µs tolerance → deep idle
	f := func(nc8 uint8) bool {
		nc := 1 + int(nc8)%4
		cfg := workload.Config{Cores: nc, Threads: nc, Freq: power.FMid}
		m, err := MapThreads(b, cfg)
		if err != nil {
			return false
		}
		if MaxActivePerRow(m.ActiveCores) != 1 {
			return false
		}
		seen := map[int]bool{}
		for _, c := range m.ActiveCores {
			if c < 0 || c >= floorplan.NumCores || seen[c] {
				return false
			}
			seen[c] = true
		}
		return len(m.ActiveCores) == nc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
