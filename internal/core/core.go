package core
