package core

import (
	"testing"

	"repro/internal/floorplan"
	"repro/internal/power"
	"repro/internal/workload"
)

// TestRowOccupancyOptimal: §VII says that beyond 4-5 cores threads fill in
// "recalling that always fewer active cores on the same horizontal line
// are desirable". Both placement orders must therefore achieve the
// theoretical minimum max-per-row occupancy ⌈Nc/rows⌉ at every core count.
func TestRowOccupancyOptimal(t *testing.T) {
	ceilDiv := func(a, b int) int { return (a + b - 1) / b }
	// The row-exclusive order achieves the theoretical minimum occupancy
	// at every core count.
	for nc := 1; nc <= floorplan.NumCores; nc++ {
		got := MaxActivePerRow(rowExclusiveOrder[:nc])
		want := ceilDiv(nc, floorplan.CoreRows)
		if got != want {
			t.Fatalf("row-exclusive with %d cores: max per row %d, want %d", nc, got, want)
		}
	}
	// Corner balancing pairs opposite corners on the same row by design
	// (the paper's scenario 2); it must still never exceed the column
	// count.
	for nc := 1; nc <= floorplan.NumCores; nc++ {
		if got := MaxActivePerRow(cornerOrder[:nc]); got > floorplan.CoreCols {
			t.Fatalf("corner order with %d cores: max per row %d", nc, got)
		}
	}
}

// TestOrdersArePermutations: each placement order must touch every core
// exactly once.
func TestOrdersArePermutations(t *testing.T) {
	for _, order := range [][]int{rowExclusiveOrder, cornerOrder} {
		if len(order) != floorplan.NumCores {
			t.Fatalf("order length %d", len(order))
		}
		seen := map[int]bool{}
		for _, c := range order {
			if c < 0 || c >= floorplan.NumCores || seen[c] {
				t.Fatalf("order %v is not a permutation", order)
			}
			seen[c] = true
		}
	}
}

// TestRowExclusiveStartsSubcooledSide: the first slot of the proposed
// order sits in the west column, where the Design-1 inlet delivers
// subcooled refrigerant.
func TestRowExclusiveStartsSubcooledSide(t *testing.T) {
	_, col := floorplan.CoreGridPos(rowExclusiveOrder[0])
	if col != 0 {
		t.Fatal("first row-exclusive slot should be the west column")
	}
}

// TestCornerOrderStartsAtCorners: the first four corner-order slots are
// the four grid corners.
func TestCornerOrderStartsAtCorners(t *testing.T) {
	corners := map[[2]int]bool{
		{0, 0}: true, {0, 1}: true, {3, 0}: true, {3, 1}: true,
	}
	for _, c := range cornerOrder[:4] {
		r, col := floorplan.CoreGridPos(c)
		if !corners[[2]int{r, col}] {
			t.Fatalf("slot %d (row %d col %d) is not a corner", c, r, col)
		}
	}
}

// TestMapThreadsFiveToSevenCores covers the §VII "more than 5 cores" case:
// the mapping stays valid and row-balanced for every benchmark.
func TestMapThreadsFiveToSevenCores(t *testing.T) {
	for _, b := range workload.All() {
		for nc := 5; nc <= 7; nc++ {
			cfg := workload.Config{Cores: nc, Threads: nc, Freq: power.FMid}
			m, err := MapThreads(b, cfg)
			if err != nil {
				t.Fatalf("%s nc=%d: %v", b.Name, nc, err)
			}
			if len(m.ActiveCores) != nc {
				t.Fatalf("%s nc=%d: %d actives", b.Name, nc, len(m.ActiveCores))
			}
			if MaxActivePerRow(m.ActiveCores) > 2 {
				t.Fatalf("%s nc=%d: more than 2 actives on one row", b.Name, nc)
			}
		}
	}
}
