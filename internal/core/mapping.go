// Package core implements the paper's primary contribution (§VII,
// Algorithm 1): QoS-aware configuration selection and thermal-aware thread
// mapping tailored to the two-phase thermosyphon.
//
// Configuration selection scans the profiled configurations in ascending
// power order and picks the first that satisfies the application's QoS.
// Thread mapping then chooses which physical cores run the workload, driven
// by the C-state available to idle cores:
//
//   - With deep idle states (C1 or deeper), idle cores draw little power,
//     so actives are staggered one-per-row ("no more than one hot spot on
//     the same horizontal line"): each evaporator channel then carries at
//     most one core's heat and stays clear of dryout.
//   - With POLL idles, idle cores still burn several watts, so the policy
//     falls back to conventional corner balancing, maximizing the spacing
//     between all warm cores.
package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/floorplan"
	"repro/internal/power"
	"repro/internal/workload"
)

// Mapping is a placement decision: which cores run the workload's threads
// and what idle state the remaining cores park in.
type Mapping struct {
	// ActiveCores lists the 0-based core indices chosen, len == Config.Cores.
	ActiveCores []int
	// IdleState is the C-state for inactive cores.
	IdleState power.CState
	// Config is the selected execution configuration.
	Config workload.Config
}

// SelectConfig implements Algorithm 1 lines 2-6: profile the application
// over the configuration space, sort by power ascending, and return the
// cheapest configuration whose QoS exceeds the requirement.
func SelectConfig(p *workload.Profile, q workload.QoS) (workload.Config, error) {
	entries := append([]workload.ProfileEntry(nil), p.Entries...)
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].Power < entries[j].Power })
	for _, e := range entries {
		if q.Satisfied(p.Bench, e.Config) {
			return e.Config, nil
		}
	}
	return workload.Config{}, fmt.Errorf("core: no configuration satisfies QoS %s for %s", q, p.Bench.Name)
}

// rowExclusiveOrder fills cores one per grid row first, alternating
// columns, starting at the north-west (the subcooled-inlet side for the
// chosen Design 1), then wraps to the remaining column slots.
var rowExclusiveOrder = buildOrder([][2]int{
	{0, 0}, {1, 1}, {2, 0}, {3, 1}, // one active per horizontal line
	{0, 1}, {1, 0}, {2, 1}, {3, 0},
})

// cornerOrder is the conventional thermal balancing of Coskun et al.:
// corners first, then the remaining mid slots at maximum spacing.
var cornerOrder = buildOrder([][2]int{
	{0, 0}, {3, 1}, {0, 1}, {3, 0},
	{1, 0}, {2, 1}, {1, 1}, {2, 0},
})

func buildOrder(slots [][2]int) []int {
	out := make([]int, len(slots))
	for i, s := range slots {
		out[i] = floorplan.CoreAtGridPos(s[0], s[1])
	}
	return out
}

// MapThreads implements Algorithm 1 lines 7-8 for one application: choose
// the idle C-state from the application's tolerable delay, then place the
// Nc active cores according to the thermosyphon-aware policy.
func MapThreads(b workload.Benchmark, cfg workload.Config) (Mapping, error) {
	if !cfg.Valid() {
		return Mapping{}, fmt.Errorf("core: invalid configuration %v", cfg)
	}
	idle := power.DeepestStateWithin(b.IdleTolerance)
	order := rowExclusiveOrder
	if idle == power.POLL {
		// Idle cores at POLL draw near-active static power: spreading the
		// actives between warm idles buys nothing, so balance instead.
		order = cornerOrder
	}
	m := Mapping{
		ActiveCores: append([]int(nil), order[:cfg.Cores]...),
		IdleState:   idle,
		Config:      cfg,
	}
	sort.Ints(m.ActiveCores)
	return m, nil
}

// Plan runs the full Algorithm 1 for one application: configuration
// selection followed by thread mapping.
func Plan(b workload.Benchmark, q workload.QoS) (Mapping, error) {
	cfg, err := SelectConfig(workload.NewProfile(b), q)
	if err != nil {
		return Mapping{}, err
	}
	return MapThreads(b, cfg)
}

// PackageState expands a mapping into the power model's package state:
// active cores carry the benchmark's per-core dynamic power, idles park in
// the mapping's C-state, and the uncore follows the benchmark demand.
func PackageState(b workload.Benchmark, m Mapping) power.PackageState {
	st := power.PackageState{
		Freq:       m.Config.Freq,
		UncoreFreq: b.UncoreFreq(m.Config),
		LLC:        b.LLCActivity(m.Config),
	}
	dyn := b.DynPerCore(m.Config)
	for i := range st.Cores {
		st.Cores[i] = power.CoreLoad{Idle: m.IdleState}
	}
	for _, c := range m.ActiveCores {
		st.Cores[c] = power.CoreLoad{Active: true, DynWatts: dyn}
	}
	return st
}

// ComponentHeatFlux estimates the heat flux (W/m²) each floorplan block
// produces for a per-block power map — the H(P, S) estimate of Algorithm 1
// line 7.
func ComponentHeatFlux(fp *floorplan.Floorplan, blockPower map[string]float64) (map[string]float64, error) {
	out := make(map[string]float64, len(blockPower))
	for name, p := range blockPower {
		b, ok := fp.Block(name)
		if !ok {
			return nil, fmt.Errorf("core: unknown block %q", name)
		}
		out[name] = p / b.Rect.Area()
	}
	return out, nil
}

// ActiveRowsHistogram counts active cores per grid row — the quantity the
// mapping policy minimizes the maximum of.
func ActiveRowsHistogram(active []int) [floorplan.CoreRows]int {
	var rows [floorplan.CoreRows]int
	for _, c := range active {
		r, _ := floorplan.CoreGridPos(c)
		rows[r]++
	}
	return rows
}

// MaxActivePerRow returns the largest number of active cores sharing one
// horizontal channel row.
func MaxActivePerRow(active []int) int {
	rows := ActiveRowsHistogram(active)
	max := 0
	for _, n := range rows {
		if n > max {
			max = n
		}
	}
	return max
}

// IdleToleranceState is a helper exposing the C-state Algorithm 1 would
// grant an application with tolerable delay d.
func IdleToleranceState(d time.Duration) power.CState { return power.DeepestStateWithin(d) }
