package core

import (
	"testing"

	"repro/internal/floorplan"
	"repro/internal/power"
	"repro/internal/workload"
)

func spec(t *testing.T, name string, q workload.QoS) AppSpec {
	t.Helper()
	b, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return AppSpec{Bench: b, QoS: q}
}

func TestPlanMultiTwoApps(t *testing.T) {
	apps := []AppSpec{
		spec(t, "canneal", workload.QoS3x),
		spec(t, "dedup", workload.QoS3x),
	}
	p, err := PlanMulti(apps)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Assignments) != 2 {
		t.Fatalf("got %d assignments", len(p.Assignments))
	}
	if p.UsedCores() > floorplan.NumCores {
		t.Fatalf("over budget: %d cores", p.UsedCores())
	}
	// Disjoint cores.
	seen := map[int]bool{}
	for _, a := range p.Assignments {
		if len(a.Cores) != a.Config.Cores {
			t.Fatalf("%s: %d cores for config %v", a.App.Bench.Name, len(a.Cores), a.Config)
		}
		for _, c := range a.Cores {
			if seen[c] {
				t.Fatalf("core %d granted twice", c)
			}
			seen[c] = true
		}
		// Shared frequency.
		if a.Config.Freq != p.Freq {
			t.Fatalf("config frequency %v differs from plan %v", a.Config.Freq, p.Freq)
		}
		// QoS met.
		if !a.App.QoS.Satisfied(a.App.Bench, a.Config) {
			t.Fatalf("%s QoS violated by %v", a.App.Bench.Name, a.Config)
		}
	}
	if p.TotalPowerW <= 0 {
		t.Fatal("no power estimate")
	}
}

func TestPlanMultiIdleBoundedByLeastTolerant(t *testing.T) {
	// canneal tolerates 200 µs (C6); raytrace only 1 µs (POLL): the joint
	// idle state must be POLL.
	apps := []AppSpec{
		spec(t, "canneal", workload.QoS3x),
		spec(t, "raytrace", workload.QoS3x),
	}
	p, err := PlanMulti(apps)
	if err != nil {
		t.Fatal(err)
	}
	if p.IdleState != power.POLL {
		t.Fatalf("joint idle = %v, want POLL", p.IdleState)
	}
	// Two deep-tolerance apps keep a deep state.
	apps2 := []AppSpec{
		spec(t, "canneal", workload.QoS3x),
		spec(t, "streamcluster", workload.QoS3x),
	}
	p2, err := PlanMulti(apps2)
	if err != nil {
		t.Fatal(err)
	}
	if p2.IdleState == power.POLL {
		t.Fatal("deep-tolerance pair should keep a deep idle state")
	}
}

func TestPlanMultiInfeasible(t *testing.T) {
	// Two apps each requiring the full machine at 1x cannot share.
	apps := []AppSpec{
		spec(t, "swaptions", workload.QoS1x),
		spec(t, "blackscholes", workload.QoS1x),
	}
	if _, err := PlanMulti(apps); err == nil {
		t.Fatal("two full-machine apps must be infeasible")
	}
}

func TestPlanMultiEmptyAndOversized(t *testing.T) {
	if _, err := PlanMulti(nil); err == nil {
		t.Fatal("empty set must error")
	}
	var many []AppSpec
	for i := 0; i < 9; i++ {
		many = append(many, spec(t, "canneal", workload.QoS3x))
	}
	if _, err := PlanMulti(many); err == nil {
		t.Fatal("nine apps on eight cores must error")
	}
}

func TestPlanMultiMatchesSingleAppPlan(t *testing.T) {
	// With one app the joint planner must meet the same QoS within the
	// same budget as the scalar planner (possibly a different but
	// equally valid configuration).
	b, _ := workload.ByName("ferret")
	single, err := Plan(b, workload.QoS2x)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := PlanMulti([]AppSpec{{Bench: b, QoS: workload.QoS2x}})
	if err != nil {
		t.Fatal(err)
	}
	if len(multi.Assignments) != 1 {
		t.Fatal("one assignment expected")
	}
	a := multi.Assignments[0]
	if !workload.QoS2x.Satisfied(b, a.Config) {
		t.Fatal("joint single-app plan violates QoS")
	}
	// The joint plan should be no worse in power than the scalar plan by
	// more than the idle-state accounting difference.
	ps := b.PackagePower(single.Config, single.IdleState)
	pm := b.PackagePower(a.Config, multi.IdleState)
	if pm > ps*1.15 {
		t.Fatalf("joint plan %.1f W much worse than scalar %.1f W", pm, ps)
	}
}

func TestPlanMultiFourApps(t *testing.T) {
	apps := []AppSpec{
		spec(t, "canneal", workload.QoS3x),
		spec(t, "dedup", workload.QoS3x),
		spec(t, "streamcluster", workload.QoS3x),
		spec(t, "vips", workload.QoS3x),
	}
	p, err := PlanMulti(apps)
	if err != nil {
		t.Fatal(err)
	}
	if p.UsedCores() > 8 {
		t.Fatalf("budget exceeded: %d", p.UsedCores())
	}
	for _, a := range p.Assignments {
		if len(a.Cores) == 0 {
			t.Fatalf("%s got no cores", a.App.Bench.Name)
		}
	}
}

func TestPackageStateMulti(t *testing.T) {
	apps := []AppSpec{
		spec(t, "canneal", workload.QoS3x),
		spec(t, "dedup", workload.QoS3x),
	}
	p, err := PlanMulti(apps)
	if err != nil {
		t.Fatal(err)
	}
	st := PackageStateMulti(p)
	var actives int
	for _, c := range st.Cores {
		if c.Active {
			actives++
			if c.DynWatts <= 0 {
				t.Fatal("active core without dynamic power")
			}
		}
	}
	if actives != p.UsedCores() {
		t.Fatalf("%d active cores, plan granted %d", actives, p.UsedCores())
	}
	if st.Freq != p.Freq {
		t.Fatal("frequency not propagated")
	}
	if st.UncoreFreq < power.UncoreFreqMin {
		t.Fatal("uncore demand missing")
	}
}

func TestPlanMultiPrefersCheaperFrequency(t *testing.T) {
	// At 3x QoS there is plenty of slack: the planner should not pick
	// fmax when a lower frequency level is cheaper.
	apps := []AppSpec{spec(t, "blackscholes", workload.QoS3x)}
	p, err := PlanMulti(apps)
	if err != nil {
		t.Fatal(err)
	}
	if p.Freq == power.FMax {
		t.Fatalf("3x single app should not need fmax, got %v", p.Freq)
	}
}
