package core

import (
	"fmt"
	"sort"

	"repro/internal/floorplan"
	"repro/internal/power"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// Algorithm 1 is formulated over a set A = {A1, …, An} of applications
// sharing one multicore CPU. This file implements that joint case: the
// applications must agree on a core frequency (the Xeon's core domain is
// shared), occupy disjoint core sets, and the idle C-state is bounded by
// the least tolerant application.

// AppSpec is one application submitted to the joint planner.
type AppSpec struct {
	Bench workload.Benchmark
	QoS   workload.QoS
}

// AppAssignment is the planner's decision for one application.
type AppAssignment struct {
	App    AppSpec
	Config workload.Config
	// Cores are the physical core indices granted to the application.
	Cores []int
}

// MultiPlan is a joint placement of several applications on one CPU.
type MultiPlan struct {
	// Freq is the shared core frequency.
	Freq power.Frequency
	// IdleState is the C-state for cores no application owns, bounded by
	// the least tolerant application.
	IdleState power.CState
	// Assignments has one entry per input application, in input order.
	Assignments []AppAssignment
	// TotalPowerW is the estimated package power of the plan.
	TotalPowerW float64
}

// UsedCores returns the total number of cores granted.
func (p MultiPlan) UsedCores() int {
	var n int
	for _, a := range p.Assignments {
		n += len(a.Cores)
	}
	return n
}

// appChoice is one candidate configuration for one app at a fixed
// frequency.
type appChoice struct {
	cfg   workload.Config
	power float64
}

// satisfier reports whether a configuration meets an app's QoS; the
// interference-aware planner substitutes a co-run-aware predicate.
type satisfier func(app AppSpec, cfg workload.Config) bool

func soloSatisfier(app AppSpec, cfg workload.Config) bool {
	return app.QoS.Satisfied(app.Bench, cfg)
}

// choicesAt enumerates an app's QoS-satisfying configurations at frequency
// f, sorted by ascending core count (each core count keeps only its
// cheapest thread variant).
func choicesAt(app AppSpec, f power.Frequency, idle power.CState, sat satisfier) []appChoice {
	var out []appChoice
	for nc := 1; nc <= floorplan.NumCores; nc++ {
		best := appChoice{power: -1}
		for _, tpc := range []int{1, 2} {
			cfg := workload.Config{Cores: nc, Threads: nc * tpc, Freq: f}
			if !sat(app, cfg) {
				continue
			}
			p := app.Bench.PackagePower(cfg, idle)
			if best.power < 0 || p < best.power {
				best = appChoice{cfg: cfg, power: p}
			}
		}
		if best.power >= 0 {
			out = append(out, best)
		}
	}
	return out
}

// PlanMulti runs Algorithm 1 for a set of applications sharing one CPU:
// for each shared frequency level it selects per-application configurations
// minimizing power subject to the QoS constraints and the core budget,
// then keeps the cheapest feasible frequency and maps the granted cores
// with the thermosyphon-aware placement policy.
// The variadic sweep options (e.g. sweep.Workers) bound the internal
// per-frequency selection pool.
func PlanMulti(apps []AppSpec, opts ...sweep.Option) (MultiPlan, error) {
	return planMulti(apps, soloSatisfier, opts...)
}

// PlanMultiInterference is PlanMulti with shared-resource interference
// applied to the QoS checks: each application's slowdown from its fixed
// set of co-runners (the other submitted apps) is folded into the
// configuration feasibility test.
func PlanMultiInterference(apps []AppSpec, im workload.InterferenceModel, opts ...sweep.Option) (MultiPlan, error) {
	others := make(map[string][]workload.Benchmark, len(apps))
	for i, a := range apps {
		var rest []workload.Benchmark
		for j, b := range apps {
			if j != i {
				rest = append(rest, b.Bench)
			}
		}
		others[a.Bench.Name] = rest
	}
	return planMulti(apps, func(app AppSpec, cfg workload.Config) bool {
		return im.CoRunSatisfied(app.QoS, app.Bench, cfg, others[app.Bench.Name])
	}, opts...)
}

func planMulti(apps []AppSpec, sat satisfier, opts ...sweep.Option) (MultiPlan, error) {
	if len(apps) == 0 {
		return MultiPlan{}, fmt.Errorf("core: no applications to plan")
	}
	if len(apps) > floorplan.NumCores {
		return MultiPlan{}, fmt.Errorf("core: %d applications exceed %d cores", len(apps), floorplan.NumCores)
	}
	// The joint idle state is bounded by the least tolerant application.
	idle := power.C6
	for _, a := range apps {
		if s := power.DeepestStateWithin(a.Bench.IdleTolerance); s < idle {
			idle = s
		}
	}

	// Every shared frequency level is an independent selection problem, so
	// the per-frequency search fans out across the sweep pool; the
	// cheapest feasible level is then picked in input order, matching the
	// serial scan's first-strictly-cheaper tie-breaking exactly.
	type freqSel struct {
		sel  []appChoice
		cost float64
		ok   bool
	}
	levels := power.Levels()
	sels, err := sweep.Run(nil, levels, func(f power.Frequency) (freqSel, error) {
		sel, cost, ok := selectAt(apps, f, idle, sat)
		return freqSel{sel: sel, cost: cost, ok: ok}, nil
	}, opts...)
	if err != nil {
		return MultiPlan{}, err
	}
	var (
		best     []appChoice
		bestFreq power.Frequency
		bestCost = -1.0
	)
	for i, s := range sels {
		if s.ok && (bestCost < 0 || s.cost < bestCost) {
			best, bestFreq, bestCost = s.sel, levels[i], s.cost
		}
	}
	if bestCost < 0 {
		return MultiPlan{}, fmt.Errorf("core: no joint configuration satisfies all QoS constraints within %d cores", floorplan.NumCores)
	}

	plan := MultiPlan{Freq: bestFreq, IdleState: idle, TotalPowerW: jointPower(apps, best, bestFreq, idle)}
	order := rowExclusiveOrder
	if idle == power.POLL {
		order = cornerOrder
	}
	// Grant cores to the densest (hottest) applications first so they get
	// the most-favorable slots of the placement order.
	type ranked struct {
		idx int
		dyn float64
	}
	rank := make([]ranked, len(apps))
	for i, a := range apps {
		rank[i] = ranked{idx: i, dyn: a.Bench.DynPerCore(best[i].cfg)}
	}
	sort.SliceStable(rank, func(i, j int) bool { return rank[i].dyn > rank[j].dyn })

	plan.Assignments = make([]AppAssignment, len(apps))
	next := 0
	for _, r := range rank {
		cfg := best[r.idx].cfg
		cores := append([]int(nil), order[next:next+cfg.Cores]...)
		sort.Ints(cores)
		next += cfg.Cores
		plan.Assignments[r.idx] = AppAssignment{App: apps[r.idx], Config: cfg, Cores: cores}
	}
	return plan, nil
}

// selectAt picks per-app configurations at a fixed frequency minimizing
// summed power subject to the shared core budget. Greedy: start each app
// at its cheapest choice, then while the budget is exceeded, shrink the
// app with the smallest power penalty per core freed.
func selectAt(apps []AppSpec, f power.Frequency, idle power.CState, sat satisfier) ([]appChoice, float64, bool) {
	all := make([][]appChoice, len(apps))
	pick := make([]int, len(apps)) // index into all[i]
	for i, a := range apps {
		cs := choicesAt(a, f, idle, sat)
		if len(cs) == 0 {
			return nil, 0, false
		}
		all[i] = cs
		// Cheapest power among the choices.
		bestJ := 0
		for j := range cs {
			if cs[j].power < cs[bestJ].power {
				bestJ = j
			}
		}
		pick[i] = bestJ
	}
	cores := func() int {
		var n int
		for i := range apps {
			n += all[i][pick[i]].cfg.Cores
		}
		return n
	}
	for cores() > floorplan.NumCores {
		bestApp, bestPenalty := -1, 0.0
		for i := range apps {
			j := pick[i]
			if j == 0 {
				continue // already at the smallest core count
			}
			cur, smaller := all[i][j], all[i][j-1]
			freed := cur.cfg.Cores - smaller.cfg.Cores
			if freed <= 0 {
				continue
			}
			penalty := (smaller.power - cur.power) / float64(freed)
			if bestApp < 0 || penalty < bestPenalty {
				bestApp, bestPenalty = i, penalty
			}
		}
		if bestApp < 0 {
			return nil, 0, false // cannot shrink further
		}
		pick[bestApp]--
	}
	sel := make([]appChoice, len(apps))
	var cost float64
	for i := range apps {
		sel[i] = all[i][pick[i]]
		cost += sel[i].power
	}
	return sel, cost, true
}

// jointPower estimates the package power of a joint selection: active
// cores from every app plus shared idle cores and the maximum uncore
// demand across the set.
func jointPower(apps []AppSpec, sel []appChoice, f power.Frequency, idle power.CState) float64 {
	var active float64
	var usedCores int
	var uncoreFreq, llc float64
	for i, a := range apps {
		cfg := sel[i].cfg
		usedCores += cfg.Cores
		active += float64(cfg.Cores) * (power.CStatePerCore(power.POLL, f) + a.Bench.DynPerCore(cfg))
		if uf := a.Bench.UncoreFreq(cfg); uf > uncoreFreq {
			uncoreFreq = uf
		}
		if la := a.Bench.LLCActivity(cfg); la > llc {
			llc = la
		}
	}
	idleP := float64(floorplan.NumCores-usedCores) * power.CStatePerCore(idle, f)
	return active + idleP + power.UncorePower(uncoreFreq) + power.LLCPower(llc)
}

// PackageStateMulti expands a joint plan into the power model's package
// state.
func PackageStateMulti(p MultiPlan) power.PackageState {
	st := power.PackageState{Freq: p.Freq}
	for i := range st.Cores {
		st.Cores[i] = power.CoreLoad{Idle: p.IdleState}
	}
	for _, a := range p.Assignments {
		dyn := a.App.Bench.DynPerCore(a.Config)
		for _, c := range a.Cores {
			st.Cores[c] = power.CoreLoad{Active: true, DynWatts: dyn}
		}
		if uf := a.App.Bench.UncoreFreq(a.Config); uf > st.UncoreFreq {
			st.UncoreFreq = uf
		}
		if la := a.App.Bench.LLCActivity(a.Config); la > st.LLC {
			st.LLC = la
		}
	}
	return st
}
