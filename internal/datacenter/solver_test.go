package datacenter

import (
	"context"
	"errors"
	"math"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/cosim"
	"repro/internal/power"
	"repro/internal/rack"
	"repro/internal/thermal"
)

// testSystem builds one coarse-grid blade system shared by every blade in
// a test fleet.
func testSystem(t *testing.T) *cosim.System {
	t.Helper()
	cfg := cosim.DefaultConfig()
	cfg.Stack.NX, cfg.Stack.NY = 19, 15
	sys, err := cosim.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// testState is a package operating point with nActive cores running at
// dynWatts each; the remaining cores idle in C1E.
func testState(dynWatts float64, nActive int) power.PackageState {
	st := power.PackageState{Freq: power.FMid, UncoreFreq: 2.0, LLC: 0.5}
	for i := range st.Cores {
		if i < nActive {
			st.Cores[i] = power.CoreLoad{Active: true, DynWatts: dynWatts}
		} else {
			st.Cores[i] = power.CoreLoad{Idle: power.C1E}
		}
	}
	return st
}

func testLoop() rack.SharedLoop {
	return rack.SharedLoop{SetpointC: 27, ApproachKPerKW: 0.5, PerBladeFlowKgH: 14, AmbientC: 35}
}

func TestSolverConvergesAndCouples(t *testing.T) {
	sys := testSystem(t)
	states := []power.PackageState{testState(4.5, 8), testState(2.5, 4)}
	topo, err := Uniform(2, 3, 2, testLoop(), states)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(sys, topo, Options{Leakage: power.DefaultLeakage()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rep, err := s.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("outer fixed point did not converge: residual %.4f °C after %d iterations", rep.ResidualC, rep.OuterIterations)
	}
	// The plant approach couples load back into the supply temperature, so
	// the solve cannot be a single feed-forward pass.
	if rep.OuterIterations < 2 {
		t.Fatalf("expected a coupled solve (≥2 outer iterations), got %d", rep.OuterIterations)
	}
	if len(rep.Blades) != 6 || len(rep.Loops) != 2 {
		t.Fatalf("report shape: %d blades, %d loops", len(rep.Blades), len(rep.Loops))
	}
	if rep.ITPowerW <= 0 {
		t.Fatalf("IT power %.1f W", rep.ITPowerW)
	}
	for _, l := range rep.Loops {
		// Load-coupled supply: above setpoint, consistent with the loop law
		// at the converged heat to within the outer tolerance.
		if l.State.SupplyC <= 27 {
			t.Fatalf("loop %s supply %.3f °C not lifted above setpoint", l.Name, l.State.SupplyC)
		}
		want := 27 + 0.5*l.State.HeatW/1000
		if math.Abs(l.State.SupplyC-want) > 0.011 {
			t.Fatalf("loop %s supply %.4f °C inconsistent with its heat (want %.4f)", l.Name, l.State.SupplyC, want)
		}
		if l.State.ReturnC <= l.State.SupplyC {
			t.Fatalf("loop %s return %.3f ≤ supply %.3f", l.Name, l.State.ReturnC, l.State.SupplyC)
		}
	}
	if rep.Plant.PUE <= 1 {
		t.Fatalf("PUE %.3f must exceed 1", rep.Plant.PUE)
	}
	if rep.MaxDieC <= rep.Loops[0].State.SupplyC {
		t.Fatalf("hottest die %.1f °C not above the water it rejects to", rep.MaxDieC)
	}
}

func TestSolverClassAggregation(t *testing.T) {
	sys := testSystem(t)
	// Eight identical blades on one loop: one class, one solve per outer
	// iteration, identical per-blade rows.
	topo, err := Uniform(2, 4, 1, testLoop(), []power.PackageState{testState(4.0, 8)})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(sys, topo, Options{Leakage: power.DefaultLeakage()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Classes() != 1 {
		t.Fatalf("identical fleet should collapse to 1 class, got %d", s.Classes())
	}
	rep, err := s.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.BladeSolves != rep.OuterIterations {
		t.Fatalf("1 class × %d iterations should mean %d solves, got %d",
			rep.OuterIterations, rep.OuterIterations, rep.BladeSolves)
	}
	for _, b := range rep.Blades[1:] {
		if b.HeatW != rep.Blades[0].HeatW || b.DieMaxC != rep.Blades[0].DieMaxC {
			t.Fatalf("identical blades diverged: %+v vs %+v", b, rep.Blades[0])
		}
	}
	if got := 8 * rep.Blades[0].HeatW; math.Abs(got-rep.ITPowerW) > 1e-9 {
		t.Fatalf("IT power %.3f ≠ 8 × blade heat %.3f", rep.ITPowerW, got)
	}
}

// TestSolverPooledByteIdentical is the outer-loop determinism contract:
// the same fleet solved serially and through the worker pool (with
// intra-solve threads) must produce byte-identical reports, under both
// linear solvers, warm starts included.
func TestSolverPooledByteIdentical(t *testing.T) {
	sys := testSystem(t)
	states := []power.PackageState{
		testState(4.5, 8), testState(3.5, 8), testState(2.5, 4), testState(5.0, 6),
	}
	topo, err := Uniform(4, 4, 2, testLoop(), states)
	if err != nil {
		t.Fatal(err)
	}
	for _, solver := range []thermal.Solver{thermal.SolverCG, thermal.SolverMGPCG} {
		var base *Report
		for _, split := range []struct{ workers, threads int }{{1, 1}, {4, 2}} {
			s, err := New(sys, topo, Options{
				Solver:  solver,
				Workers: split.workers,
				Threads: split.threads,
				Leakage: power.DefaultLeakage(),
			})
			if err != nil {
				t.Fatal(err)
			}
			rep, err := s.Solve(context.Background())
			s.Close()
			if err != nil {
				t.Fatalf("%v %dx%d: %v", solver, split.workers, split.threads, err)
			}
			if base == nil {
				base = rep
				continue
			}
			if !reflect.DeepEqual(base, rep) {
				t.Fatalf("%v: pooled %d×%d report differs from serial", solver, split.workers, split.threads)
			}
		}
	}
}

// TestSolverCancellation cancels the context from the progress callback
// mid-solve and requires a prompt context.Canceled with no goroutines
// left behind.
func TestSolverCancellation(t *testing.T) {
	sys := testSystem(t)
	topo, err := Uniform(2, 2, 1, testLoop(), []power.PackageState{
		testState(4.5, 8), testState(2.5, 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s, err := New(sys, topo, Options{
		Workers: 2,
		Threads: 2,
		Leakage: power.DefaultLeakage(),
		Progress: func(outer int, _ float64) {
			if outer == 1 {
				cancel()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Solve(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	s.Close()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSolverWarmSeries(t *testing.T) {
	sys := testSystem(t)
	topo, err := Uniform(2, 2, 1, testLoop(), []power.PackageState{testState(4.0, 8)})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(sys, topo, Options{Leakage: power.DefaultLeakage()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	first, err := s.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// A second solve at the same load starts from the converged loop
	// temperatures and must terminate immediately.
	second, err := s.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if second.OuterIterations != 1 {
		t.Fatalf("re-solve at converged temperatures took %d outer iterations", second.OuterIterations)
	}
	if math.Abs(second.ITPowerW-first.ITPowerW) > 0.05 {
		t.Fatalf("re-solve moved IT power: %.3f → %.3f W", first.ITPowerW, second.ITPowerW)
	}
	// A load step re-couples the fleet and settles at measurably more heat.
	hot, err := s.SolveScaled(context.Background(), 1.3)
	if err != nil {
		t.Fatal(err)
	}
	if hot.ITPowerW <= first.ITPowerW {
		t.Fatalf("30%% more dynamic load should raise IT power: %.1f → %.1f W", first.ITPowerW, hot.ITPowerW)
	}
}

func TestSolverValidation(t *testing.T) {
	sys := testSystem(t)
	good, err := Uniform(1, 1, 1, testLoop(), []power.PackageState{testState(4, 8)})
	if err != nil {
		t.Fatal(err)
	}
	// Topology errors surface at construction.
	bad := good
	bad.Racks = nil
	if _, err := New(sys, bad, Options{}); err == nil {
		t.Fatal("topology with no racks must fail")
	}
	// A system without the power model cannot fold leakage.
	cfg := cosim.DefaultConfig()
	cfg.Stack.NX, cfg.Stack.NY = 19, 15
	noPower, err := cosim.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	noPower.Power = nil
	if _, err := New(noPower, good, Options{}); err == nil {
		t.Fatal("system without power model must fail")
	}
	// Negative load scales are rejected.
	s, err := New(sys, good, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.SolveScaled(context.Background(), -1); err == nil {
		t.Fatal("negative load scale must fail")
	}
}

func TestTopologyValidate(t *testing.T) {
	loop := testLoop()
	cases := []struct {
		name string
		mut  func(*Topology)
	}{
		{"no loops", func(t *Topology) { t.Loops = nil }},
		{"no blades", func(t *Topology) { t.Racks[0].Blades = nil }},
		{"loop out of range", func(t *Topology) { t.Racks[0].Loop = 7 }},
		{"zero flow", func(t *Topology) { t.Loops[0].PerBladeFlowKgH = 0 }},
		{"negative approach", func(t *Topology) { t.Loops[0].ApproachKPerKW = -1 }},
		{"setpoint out of range", func(t *Topology) { t.Loops[0].SetpointC = 120 }},
	}
	for _, tc := range cases {
		topo, err := Uniform(2, 2, 2, loop, []power.PackageState{testState(4, 8)})
		if err != nil {
			t.Fatal(err)
		}
		tc.mut(&topo)
		if err := topo.Validate(); err == nil {
			t.Fatalf("%s: Validate accepted a broken topology", tc.name)
		}
	}
	// An orphaned loop (serving no rack) is a wiring bug.
	topo, err := Uniform(2, 2, 2, loop, []power.PackageState{testState(4, 8)})
	if err != nil {
		t.Fatal(err)
	}
	topo.Racks[1].Loop = 0
	if err := topo.Validate(); err == nil {
		t.Fatal("orphaned loop must fail validation")
	}
}

func TestUniformShape(t *testing.T) {
	states := []power.PackageState{testState(4, 8), testState(2, 4)}
	topo, err := Uniform(3, 2, 2, testLoop(), states)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if topo.NumBlades() != 6 || len(topo.Loops) != 2 {
		t.Fatalf("shape: %d blades, %d loops", topo.NumBlades(), len(topo.Loops))
	}
	// Rack→loop assignment is round-robin, and blade states round-robin in
	// flat rack-major order.
	if topo.Racks[0].Loop != 0 || topo.Racks[1].Loop != 1 || topo.Racks[2].Loop != 0 {
		t.Fatalf("rack→loop: %d %d %d", topo.Racks[0].Loop, topo.Racks[1].Loop, topo.Racks[2].Loop)
	}
	if topo.Racks[0].Blades[1].State != states[1] || topo.Racks[1].Blades[0].State != states[0] {
		t.Fatal("blade states not round-robin in flat order")
	}
	// Degenerate parameters are rejected.
	for _, bad := range []func() (Topology, error){
		func() (Topology, error) { return Uniform(0, 2, 1, testLoop(), states) },
		func() (Topology, error) { return Uniform(2, 0, 1, testLoop(), states) },
		func() (Topology, error) { return Uniform(2, 2, 3, testLoop(), states) },
		func() (Topology, error) { return Uniform(2, 2, 0, testLoop(), states) },
		func() (Topology, error) { return Uniform(2, 2, 1, testLoop(), nil) },
	} {
		if _, err := bad(); err == nil {
			t.Fatal("degenerate Uniform parameters must fail")
		}
	}
}
