package datacenter

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/power"
	"repro/internal/thermal"
)

// solveOnce builds a solver with the options, runs one nominal solve and
// tears it down.
func solveOnce(t *testing.T, topo Topology, opt Options) *Report {
	t.Helper()
	sys := testSystem(t)
	opt.Leakage = power.DefaultLeakage()
	s, err := New(sys, topo, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rep, err := s.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestFaultedFleetHotterThanHealthy: a pump+fouling scenario must converge
// to a hotter fleet than the healthy baseline and be named in the report.
func TestFaultedFleetHotterThanHealthy(t *testing.T) {
	topo, err := Uniform(2, 3, 1, testLoop(), []power.PackageState{testState(4.5, 8)})
	if err != nil {
		t.Fatal(err)
	}
	healthy := solveOnce(t, topo, Options{})
	sc := faults.Scenario{Name: "pump+fouling", Faults: []faults.Fault{
		{Kind: faults.PumpDegradation, Severity: 0.5},
		{Kind: faults.CondenserFouling, Severity: 0.5},
	}}
	faulted := solveOnce(t, topo, Options{Scenario: &sc})
	if !healthy.Converged || !faulted.Converged {
		t.Fatalf("converged: healthy %v, faulted %v", healthy.Converged, faulted.Converged)
	}
	if faulted.Scenario != "pump+fouling" {
		t.Errorf("report scenario = %q", faulted.Scenario)
	}
	if faulted.MaxDieC <= healthy.MaxDieC {
		t.Fatalf("faulted fleet not hotter: %.2f vs healthy %.2f °C", faulted.MaxDieC, healthy.MaxDieC)
	}
}

// TestBladeFaultSplitsClass: a blade-scoped fault must split its blade
// into its own class and only heat that blade.
func TestBladeFaultSplitsClass(t *testing.T) {
	topo, err := Uniform(2, 2, 1, testLoop(), []power.PackageState{testState(4.5, 8)})
	if err != nil {
		t.Fatal(err)
	}
	healthy := solveOnce(t, topo, Options{})
	if healthy.Classes != 1 {
		t.Fatalf("healthy identical fleet has %d classes, want 1", healthy.Classes)
	}
	sc := faults.Scenario{Name: "one-blade", Faults: []faults.Fault{
		{Kind: faults.BladeCoolingLoss, Severity: 0.5, Blade: "r0b1"},
	}}
	faulted := solveOnce(t, topo, Options{Scenario: &sc})
	if faulted.Classes != 2 {
		t.Fatalf("blade-scoped fault produced %d classes, want 2", faulted.Classes)
	}
	var hit, rest float64
	for _, b := range faulted.Blades {
		if b.Name == "r0b1" {
			hit = b.DieMaxC
		} else if b.DieMaxC > rest {
			rest = b.DieMaxC
		}
	}
	if hit <= rest {
		t.Fatalf("faulted blade r0b1 (%.2f °C) not hotter than the rest (%.2f °C)", hit, rest)
	}
}

// TestDegradedModeThrottlesToFeasible: when the converged TCASE exceeds
// the limit, the solver must step the offending blades down the DVFS
// ladder until the fleet is feasible again.
func TestDegradedModeThrottlesToFeasible(t *testing.T) {
	topo, err := Uniform(2, 2, 1, testLoop(), []power.PackageState{testState(4.5, 8)})
	if err != nil {
		t.Fatal(err)
	}
	healthy := solveOnce(t, topo, Options{})
	var t0 float64
	for _, b := range healthy.Blades {
		if b.TCaseC > t0 {
			t0 = b.TCaseC
		}
	}
	limit := t0 - 0.5 // infeasible at full speed, reachable one DVFS step down
	rep := solveOnce(t, topo, Options{TCaseLimitC: limit})
	if !rep.Feasible() {
		t.Fatalf("fleet not throttled to feasibility: converged %v, %d infeasible", rep.Converged, len(rep.Infeasible))
	}
	if rep.ThrottledBlades == 0 {
		t.Fatal("no blades throttled despite the violated limit")
	}
	var counted int
	for _, b := range rep.Blades {
		if b.TCaseC > limit {
			t.Errorf("blade %s TCASE %.2f °C still over the %.2f °C limit", b.Name, b.TCaseC, limit)
		}
		if b.ThrottleSteps > 0 {
			counted++
		}
	}
	if counted != rep.ThrottledBlades {
		t.Errorf("ThrottledBlades %d inconsistent with %d per-blade rows", rep.ThrottledBlades, counted)
	}
	if rep.MaxThrottleSteps < 1 {
		t.Errorf("MaxThrottleSteps = %d", rep.MaxThrottleSteps)
	}
}

// TestInfeasibleBladesNamed: an unreachable limit must exhaust the DVFS
// ladder and name every stuck blade with a diagnostic — not return an
// error, and not claim feasibility.
func TestInfeasibleBladesNamed(t *testing.T) {
	topo, err := Uniform(1, 2, 1, testLoop(), []power.PackageState{testState(4.5, 8)})
	if err != nil {
		t.Fatal(err)
	}
	rep := solveOnce(t, topo, Options{TCaseLimitC: 1}) // below the water temperature: unreachable
	if rep.Feasible() {
		t.Fatal("fleet claims feasibility under an unreachable limit")
	}
	if len(rep.Infeasible) != len(rep.Blades) {
		t.Fatalf("%d of %d blades named infeasible, want all", len(rep.Infeasible), len(rep.Blades))
	}
	for _, b := range rep.Infeasible {
		if b.Name == "" || b.Loop == "" {
			t.Errorf("infeasible blade row missing names: %+v", b)
		}
		if !strings.Contains(b.Reason, "TCASE") || !strings.Contains(b.Reason, "DVFS") {
			t.Errorf("reason %q does not explain the TCASE violation and the exhausted DVFS ladder", b.Reason)
		}
	}
}

// TestNoThrottleOption: MaxThrottleSteps < 0 disables the degraded mode —
// violating blades go straight to the infeasible list at full speed.
func TestNoThrottleOption(t *testing.T) {
	topo, err := Uniform(1, 2, 1, testLoop(), []power.PackageState{testState(4.5, 8)})
	if err != nil {
		t.Fatal(err)
	}
	rep := solveOnce(t, topo, Options{TCaseLimitC: 1, MaxThrottleSteps: -1})
	if rep.ThrottledBlades != 0 || rep.MaxThrottleSteps != 0 {
		t.Fatalf("throttling disabled but %d blades throttled", rep.ThrottledBlades)
	}
	if len(rep.Infeasible) != len(rep.Blades) {
		t.Fatalf("%d of %d blades named infeasible", len(rep.Infeasible), len(rep.Blades))
	}
}

// TestStallAdaptationHalvesDamping: an over-relaxed outer update (α = 2
// oscillates) must trip the stall detector, halve the damping, and still
// converge — with the halvings reported.
func TestStallAdaptationHalvesDamping(t *testing.T) {
	topo, err := Uniform(2, 3, 1, testLoop(), []power.PackageState{testState(4.5, 8)})
	if err != nil {
		t.Fatal(err)
	}
	rep := solveOnce(t, topo, Options{Damping: 2.0})
	if !rep.Converged {
		t.Fatalf("over-relaxed fixed point never converged: residual %.4f after %d iterations",
			rep.ResidualC, rep.OuterIterations)
	}
	if rep.DampingHalvings < 1 {
		t.Fatalf("oscillating fixed point converged without any damping halving (outer %d)", rep.OuterIterations)
	}
	if rep.FinalDamping >= 2.0 {
		t.Fatalf("FinalDamping %.2f not reduced", rep.FinalDamping)
	}
}

// TestFaultedPooledByteIdentical: the determinism contract holds under a
// composed fault scenario and degraded-mode throttling — any workers ×
// threads split must reproduce the serial report exactly.
func TestFaultedPooledByteIdentical(t *testing.T) {
	sys := testSystem(t)
	states := []power.PackageState{testState(4.5, 8), testState(3.5, 8), testState(2.5, 4)}
	topo, err := Uniform(2, 3, 2, testLoop(), states)
	if err != nil {
		t.Fatal(err)
	}
	sc := faults.Scenario{Name: "mixed", Faults: []faults.Fault{
		{Kind: faults.PumpDegradation, Severity: 0.6, Loop: "loop0"},
		{Kind: faults.CondenserFouling, Severity: 0.4},
		{Kind: faults.BladeCoolingLoss, Severity: 0.4, Blade: "r0b0"},
	}}
	var base *Report
	for _, split := range []struct{ workers, threads int }{{1, 1}, {4, 2}} {
		s, err := New(sys, topo, Options{
			Solver:   thermal.SolverMGPCG,
			Workers:  split.workers,
			Threads:  split.threads,
			Leakage:  power.DefaultLeakage(),
			Scenario: &sc,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Solve(context.Background())
		s.Close()
		if err != nil {
			t.Fatalf("%dx%d: %v", split.workers, split.threads, err)
		}
		if base == nil {
			base = rep
			continue
		}
		if !reflect.DeepEqual(base, rep) {
			t.Fatalf("pooled %d×%d faulted report differs from serial", split.workers, split.threads)
		}
	}
}

// TestScenarioValidationAtNew: invalid fault parameters surface at
// construction, not mid-solve.
func TestScenarioValidationAtNew(t *testing.T) {
	sys := testSystem(t)
	topo, err := Uniform(1, 1, 1, testLoop(), []power.PackageState{testState(4, 8)})
	if err != nil {
		t.Fatal(err)
	}
	bad := faults.Scenario{Faults: []faults.Fault{{Kind: faults.PumpDegradation, Severity: 1.5}}}
	if _, err := New(sys, topo, Options{Scenario: &bad}); err == nil {
		t.Fatal("severity 1.5 accepted")
	}
	// A fault scoped to a blade that does not exist is a no-op, not an error.
	miss := faults.Scenario{Faults: []faults.Fault{{Kind: faults.BladeCoolingLoss, Severity: 0.5, Blade: "r9b9"}}}
	s, err := New(sys, topo, Options{Scenario: &miss})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
}

// TestDegradedCancellation cancels during a throttle retry round and
// requires a prompt context.Canceled with no goroutines left behind.
func TestDegradedCancellation(t *testing.T) {
	sys := testSystem(t)
	topo, err := Uniform(2, 2, 1, testLoop(), []power.PackageState{testState(4.5, 8)})
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rounds := 0
	s, err := New(sys, topo, Options{
		Workers:     2,
		Threads:     2,
		Leakage:     power.DefaultLeakage(),
		TCaseLimitC: 1, // unreachable: forces throttle retry rounds
		Progress: func(outer int, _ float64) {
			if outer == 1 {
				// Cancel at the start of the second fixed-point round — inside
				// the degraded-mode retry path.
				if rounds++; rounds == 2 {
					cancel()
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Solve(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	s.Close()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
