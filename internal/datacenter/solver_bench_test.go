package datacenter

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/cosim"
	"repro/internal/power"
)

// BenchmarkDatacenterSolve times the full nested fleet solve from cold
// loop temperatures at increasing fleet sizes. The PARSEC-like mix of 13
// distinct blade states bounds the class count, so the cost scales with
// classes × outer iterations, not blades — the property that makes the
// 1000-blade point affordable.
func BenchmarkDatacenterSolve(b *testing.B) {
	cfg := cosim.DefaultConfig()
	cfg.Stack.NX, cfg.Stack.NY = 19, 15
	sys, err := cosim.NewSystem(cfg)
	if err != nil {
		b.Fatal(err)
	}
	states := make([]power.PackageState, 13)
	for i := range states {
		states[i] = testState(2.0+0.25*float64(i), 4+i%5)
	}
	for _, bl := range []struct{ racks, perRack, loops int }{
		{2, 16, 1}, {8, 32, 2}, {25, 40, 4},
	} {
		blades := bl.racks * bl.perRack
		b.Run(fmt.Sprintf("blades=%d", blades), func(b *testing.B) {
			topo, err := Uniform(bl.racks, bl.perRack, bl.loops, testLoop(), states)
			if err != nil {
				b.Fatal(err)
			}
			var outer, solves int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := New(sys, topo, Options{Leakage: power.DefaultLeakage()})
				if err != nil {
					b.Fatal(err)
				}
				rep, err := s.Solve(context.Background())
				s.Close()
				if err != nil {
					b.Fatal(err)
				}
				if !rep.Converged {
					b.Fatal("fleet solve did not converge")
				}
				outer += rep.OuterIterations
				solves += rep.BladeSolves
			}
			b.ReportMetric(float64(outer)/float64(b.N), "outer/op")
			b.ReportMetric(float64(solves)/float64(b.N), "solves/op")
		})
	}
}
