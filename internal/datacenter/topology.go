// Package datacenter scales the single-server co-simulation to a fleet:
// N racks × M blades share chiller water loops, and the loop water
// temperatures are coupled to the blade solves by a nested fixed point.
//
// The nesting is two-level. The inner level is the per-blade coupled
// solve the rest of the repository is built on (thermal field ↔
// thermosyphon boundary, with temperature-dependent leakage folded in by
// cosim.Session.SolveSteadyLeakage). The outer level closes the loop the
// rack layer used to leave open: each loop's supply temperature is
// derived from the heat its blades reject (rack.SharedLoop.SupplyC), that
// temperature feeds back into every blade solve on the loop, and a damped
// fixed point iterates the per-loop supply temperatures until they stop
// moving. Convergence is declared when the largest undamped per-loop
// supply update falls below Options.TolC (default 0.01 °C — an order of
// magnitude below the 0.1 °C the experiments resolve).
//
// Two mechanisms make the fleet solve fast without giving up exactness:
//
//   - Class aggregation: blades that are byte-identical inputs — the same
//     package state on the same loop — necessarily produce byte-identical
//     solves, so each equivalence class is solved once per outer
//     iteration and its heat is multiplied by the class population. A
//     fully heterogeneous fleet degrades gracefully to one class per
//     blade.
//   - Warm-start carry: each class keeps its own cosim.Session across
//     outer iterations (and across successive Solve calls, e.g. the
//     hours of a diurnal sweep). Between iterations the carried field is
//     re-seated by the supply-temperature delta (Session.ReseatWater), so
//     outer iterations after the first cost a few refinement passes.
//
// Determinism: class solves fan out through sweep.RunState, but every
// class owns its session, each class is evaluated exactly once per outer
// iteration, and per-loop heats are accumulated in class order from the
// input-ordered result slice — so a pooled solve is byte-identical to a
// serial one at any workers × threads split, warm starts included (the
// per-class solve sequences are schedule-independent). This is asserted
// by the determinism tests at 1×1 vs 4×2 under cg and mgpcg.
package datacenter

import (
	"fmt"

	"repro/internal/power"
	"repro/internal/rack"
)

// Loop is one shared water loop of the facility: the rack-layer coupled
// boundary plus a label for reports.
type Loop struct {
	Name string
	rack.SharedLoop
}

// Blade is one server blade: a label and the CPU package operating point
// the blade runs at.
type Blade struct {
	Name string
	// State is the package operating point (frequencies, per-core loads)
	// the blade's power map is assembled from.
	State power.PackageState
}

// Rack is one rack of blades plumbed into a shared loop.
type Rack struct {
	Name string
	// Loop indexes Topology.Loops.
	Loop int
	// Blades are the rack's servers, in slot order.
	Blades []Blade
}

// Topology is the facility: water loops and the racks they serve.
type Topology struct {
	Loops []Loop
	Racks []Rack
}

// Validate checks structural consistency.
func (t *Topology) Validate() error {
	if len(t.Loops) == 0 {
		return fmt.Errorf("datacenter: topology has no loops")
	}
	if len(t.Racks) == 0 {
		return fmt.Errorf("datacenter: topology has no racks")
	}
	for i, l := range t.Loops {
		if l.PerBladeFlowKgH <= 0 {
			return fmt.Errorf("datacenter: loop %d (%s): non-positive per-blade flow", i, l.Name)
		}
		if l.SetpointC < 0 || l.SetpointC > 90 {
			return fmt.Errorf("datacenter: loop %d (%s): setpoint %.1f °C outside [0,90]", i, l.Name, l.SetpointC)
		}
		if l.ApproachKPerKW < 0 {
			return fmt.Errorf("datacenter: loop %d (%s): negative approach", i, l.Name)
		}
	}
	served := make([]bool, len(t.Loops))
	for i, r := range t.Racks {
		if r.Loop < 0 || r.Loop >= len(t.Loops) {
			return fmt.Errorf("datacenter: rack %d (%s): loop index %d out of range", i, r.Name, r.Loop)
		}
		if len(r.Blades) == 0 {
			return fmt.Errorf("datacenter: rack %d (%s): no blades", i, r.Name)
		}
		served[r.Loop] = true
	}
	for i, s := range served {
		if !s {
			return fmt.Errorf("datacenter: loop %d (%s) serves no rack", i, t.Loops[i].Name)
		}
	}
	return nil
}

// NumBlades returns the total blade count.
func (t *Topology) NumBlades() int {
	var n int
	for _, r := range t.Racks {
		n += len(r.Blades)
	}
	return n
}

// NumClasses returns the number of distinct blade equivalence classes —
// the per-outer-iteration solve count, and the point count callers should
// size worker pools for.
func (t *Topology) NumClasses() int {
	type key struct {
		loop int
		st   power.PackageState
	}
	seen := make(map[key]struct{})
	for _, r := range t.Racks {
		for _, b := range r.Blades {
			seen[key{r.Loop, b.State}] = struct{}{}
		}
	}
	return len(seen)
}

// Uniform builds an nRacks × bladesPerRack topology over nLoops shared
// loops with identical loop parameters: rack r feeds loop r mod nLoops,
// and blade states are assigned round-robin from states in flat
// (rack-major) order. It is the builder the scale experiments and
// cmd/rackplan use.
func Uniform(nRacks, bladesPerRack, nLoops int, loop rack.SharedLoop, states []power.PackageState) (Topology, error) {
	if nRacks < 1 || bladesPerRack < 1 {
		return Topology{}, fmt.Errorf("datacenter: need at least one rack and one blade per rack, got %d×%d", nRacks, bladesPerRack)
	}
	if nLoops < 1 || nLoops > nRacks {
		return Topology{}, fmt.Errorf("datacenter: loop count %d outside [1,%d racks]", nLoops, nRacks)
	}
	if len(states) == 0 {
		return Topology{}, fmt.Errorf("datacenter: no blade states")
	}
	var t Topology
	for l := 0; l < nLoops; l++ {
		t.Loops = append(t.Loops, Loop{Name: fmt.Sprintf("loop%d", l), SharedLoop: loop})
	}
	blade := 0
	for r := 0; r < nRacks; r++ {
		rk := Rack{Name: fmt.Sprintf("rack%d", r), Loop: r % nLoops}
		for b := 0; b < bladesPerRack; b++ {
			rk.Blades = append(rk.Blades, Blade{
				Name:  fmt.Sprintf("r%db%d", r, b),
				State: states[blade%len(states)],
			})
			blade++
		}
		t.Racks = append(t.Racks, rk)
	}
	return t, nil
}
