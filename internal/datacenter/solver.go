package datacenter

import (
	"context"
	"fmt"
	"math"

	"repro/internal/chiller"
	"repro/internal/cosim"
	"repro/internal/power"
	"repro/internal/rack"
	"repro/internal/sweep"
	"repro/internal/thermal"
	"repro/internal/thermosyphon"
)

// Options tunes the nested solve. The zero value is valid: CG solver,
// auto worker pool, serial solves, warm starts on, no leakage feedback.
type Options struct {
	// Solver selects the thermal linear solver of every blade session.
	Solver thermal.Solver
	// Workers bounds the sweep pool fanning out the per-class blade
	// solves (0 = GOMAXPROCS, 1 = serial). The pool never changes
	// results; see the package comment's determinism contract.
	Workers int
	// Threads is the intra-solve team width of every blade session
	// (0 or 1 = serial). Callers compose Workers × Threads under one core
	// budget (experiments.RunConfig does the split).
	Threads int
	// Leakage scales each blade's static power with its die temperature,
	// closing the power↔temperature loop that makes the outer fixed point
	// more than a single feed-forward pass. The zero model (BetaPerC 0)
	// disables the feedback.
	Leakage power.LeakageModel
	// NoWarmStart disables the cross-iteration warm-start carry (and the
	// water re-seat); every blade solve then seeds cold. Pooled runs are
	// byte-identical to serial either way — the knob exists to measure
	// what the carry buys.
	NoWarmStart bool
	// Damping is the outer update factor α in T ← T + α·(T' − T).
	// 0 selects the default 0.8; the loop gain (plant approach ×
	// leakage sensitivity) is well below 1 for physical parameters, so
	// mild damping is a robustness margin, not a convergence crutch.
	Damping float64
	// TolC is the convergence tolerance on the largest undamped per-loop
	// supply-temperature update (°C). 0 selects the default 0.01.
	TolC float64
	// MaxOuter bounds the outer iterations. 0 selects the default 40.
	MaxOuter int
	// Progress, when non-nil, is called after every outer iteration with
	// the iteration number (1-based) and the undamped residual (°C).
	Progress func(outer int, maxDeltaC float64)
}

func (o Options) withDefaults() Options {
	if o.Damping == 0 {
		o.Damping = 0.8
	}
	if o.TolC == 0 {
		o.TolC = 0.01
	}
	if o.MaxOuter == 0 {
		o.MaxOuter = 40
	}
	return o
}

// class is one equivalence class of blades: same package state, same
// loop, therefore byte-identical solves. It owns the warm-started solve
// session that represents every blade in the class.
type class struct {
	loop  int
	st    power.PackageState
	count int
	ses   *cosim.Session
	// lastWaterC is the supply temperature of the class's previous solve,
	// the reference for the warm-start re-seat.
	lastWaterC float64
}

// classKey identifies a class: blades are interchangeable exactly when
// they run the same package state on the same loop.
type classKey struct {
	loop int
	st   power.PackageState
}

// Solver runs the nested datacenter solve for one topology. It keeps
// per-class sessions (and the converged loop temperatures) across Solve
// calls, so a series of solves — the hours of a diurnal sweep, a
// what-if re-plan — warm-starts from the previous converged fleet state.
// A Solver is not safe for concurrent use; Close releases the sessions.
type Solver struct {
	topo Topology
	sys  *cosim.System
	opt  Options

	classes    []*class
	bladeClass []int // flat (rack-major) blade index → class index

	temps []float64 // per-loop supply temperatures (carried across Solve calls)
}

// New builds a solver for the topology on the given blade system. All
// blades share the system (one floorplan, stack and thermosyphon design);
// each blade class gets its own solve session, so class solves are
// independent and safely fan out across goroutines. The system must carry
// the Xeon power model (leakage folding needs the static/dynamic split).
func New(sys *cosim.System, topo Topology, opt Options) (*Solver, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if sys.Power == nil {
		return nil, fmt.Errorf("datacenter: system has no power model")
	}
	s := &Solver{topo: topo, sys: sys, opt: opt.withDefaults()}

	byKey := make(map[classKey]int)
	for _, r := range topo.Racks {
		for _, b := range r.Blades {
			key := classKey{loop: r.Loop, st: b.State}
			ci, ok := byKey[key]
			if !ok {
				ci = len(s.classes)
				byKey[key] = ci
				s.classes = append(s.classes, &class{loop: r.Loop, st: b.State})
			}
			s.classes[ci].count++
			s.bladeClass = append(s.bladeClass, ci)
		}
	}
	for _, c := range s.classes {
		opts := []cosim.SessionOption{
			cosim.WithSolver(s.opt.Solver),
			cosim.CarryWarmStart(!s.opt.NoWarmStart),
		}
		if s.opt.Threads > 1 {
			opts = append(opts, cosim.WithThreads(s.opt.Threads))
		}
		c.ses = sys.NewSession(opts...)
	}
	s.temps = make([]float64, len(topo.Loops))
	for i, l := range topo.Loops {
		s.temps[i] = l.SupplyC(0)
		// Seed the re-seat reference so the first iteration's delta is zero.
		for _, c := range s.classes {
			if c.loop == i {
				c.lastWaterC = s.temps[i]
			}
		}
	}
	return s, nil
}

// Classes returns the number of distinct blade classes the solver solves
// per outer iteration.
func (s *Solver) Classes() int { return len(s.classes) }

// Close releases every class session's worker team.
func (s *Solver) Close() error {
	for _, c := range s.classes {
		c.ses.Close()
	}
	return nil
}

// classResult is what one class solve contributes to the outer update.
type classResult struct {
	heatW      float64
	dieMaxC    float64
	tcaseC     float64
	coupleIter int
	leakIter   int
}

// Solve runs the nested fixed point at nominal load.
func (s *Solver) Solve(ctx context.Context) (*Report, error) { return s.SolveScaled(ctx, 1) }

// SolveScaled runs the nested fixed point with every blade's per-core
// dynamic power scaled by dynScale — the fleet-wide load knob the diurnal
// sweep drives from a workload trace. Scaling is applied to the class
// states on entry; class identity (and with it the warm-start carry) is
// stable across scales. Cancelling ctx aborts between outer iterations
// and between (and inside) the fanned-out blade solves, returning
// ctx.Err() promptly.
func (s *Solver) SolveScaled(ctx context.Context, dynScale float64) (*Report, error) {
	if dynScale < 0 {
		return nil, fmt.Errorf("datacenter: negative load scale %g", dynScale)
	}
	opt := s.opt
	states := make([]power.PackageState, len(s.classes))
	for i, c := range s.classes {
		states[i] = scaleState(c.st, dynScale)
	}
	idx := make([]int, len(s.classes))
	for i := range idx {
		idx[i] = i
	}

	var (
		results   []classResult
		loopHeat  = make([]float64, len(s.topo.Loops))
		converged bool
		outer     int
		residual  = math.Inf(1)
	)
	for outer = 1; outer <= opt.MaxOuter; outer++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		// Inner level: one coupled (thermal ↔ thermosyphon ↔ leakage)
		// solve per blade class at the current loop temperatures, fanned
		// out across the worker pool. Results come back input-ordered.
		res, err := sweep.RunState(ctx, idx,
			func() (struct{}, error) { return struct{}{}, nil },
			func(_ struct{}, ci int) (classResult, error) {
				c := s.classes[ci]
				waterC := s.temps[c.loop]
				op := thermosyphon.Operating{
					WaterInC:     waterC,
					WaterFlowKgH: s.topo.Loops[c.loop].PerBladeFlowKgH,
				}
				if !opt.NoWarmStart {
					c.ses.ReseatWater(waterC - c.lastWaterC)
				}
				c.lastWaterC = waterC
				r, err := c.ses.SolveSteadyLeakage(ctx, states[ci], op, opt.Leakage)
				if err != nil {
					return classResult{}, fmt.Errorf("class %d (loop %d): %w", ci, c.loop, err)
				}
				die, err := s.sys.DieStats(&r.Result)
				if err != nil {
					return classResult{}, err
				}
				return classResult{
					heatW:      r.TotalPowerW,
					dieMaxC:    die.MaxC,
					tcaseC:     s.sys.TCase(&r.Result),
					coupleIter: r.Iterations,
					leakIter:   r.LeakageIterations,
				}, nil
			},
			sweep.Workers(opt.Workers))
		if err != nil {
			return nil, err
		}
		results = res

		// Outer level: re-derive each loop's supply temperature from the
		// heat its blades reject. Heats accumulate in class order, so the
		// reduction is schedule-independent.
		for l := range loopHeat {
			loopHeat[l] = 0
		}
		for ci, r := range results {
			loopHeat[s.classes[ci].loop] += float64(s.classes[ci].count) * r.heatW
		}
		residual = 0
		for l, lp := range s.topo.Loops {
			d := math.Abs(lp.SupplyC(loopHeat[l]) - s.temps[l])
			if d > residual {
				residual = d
			}
		}
		if opt.Progress != nil {
			opt.Progress(outer, residual)
		}
		if residual < opt.TolC {
			converged = true
			break
		}
		for l, lp := range s.topo.Loops {
			s.temps[l] += opt.Damping * (lp.SupplyC(loopHeat[l]) - s.temps[l])
		}
	}
	if outer > opt.MaxOuter {
		outer = opt.MaxOuter
	}
	return s.report(results, outer, converged, residual)
}

// report assembles the converged fleet state into a Report.
func (s *Solver) report(results []classResult, outer int, converged bool, residual float64) (*Report, error) {
	rep := &Report{
		OuterIterations: outer,
		Converged:       converged,
		ResidualC:       residual,
		Classes:         len(s.classes),
		BladeSolves:     outer * len(s.classes),
	}
	// Per-blade rows in flat (rack-major) order, expanded from the class
	// results; per-loop heats re-accumulated in the same order so the
	// report is independent of the class partition.
	loopHeats := make([][]float64, len(s.topo.Loops))
	flat := 0
	for ri, r := range s.topo.Racks {
		for bi, b := range r.Blades {
			cr := results[s.bladeClass[flat]]
			rep.Blades = append(rep.Blades, BladeReport{
				Rack: ri, Slot: bi, Name: b.Name,
				HeatW: cr.heatW, DieMaxC: cr.dieMaxC, TCaseC: cr.tcaseC,
			})
			rep.ITPowerW += cr.heatW
			if cr.dieMaxC > rep.MaxDieC {
				rep.MaxDieC = cr.dieMaxC
			}
			loopHeats[r.Loop] = append(loopHeats[r.Loop], cr.heatW)
			flat++
		}
	}
	loads := make([]chiller.LoopLoad, 0, len(s.topo.Loops))
	for l, lp := range s.topo.Loops {
		st, err := lp.Boundary(loopHeats[l])
		if err != nil {
			return nil, fmt.Errorf("datacenter: loop %d (%s): %w", l, lp.Name, err)
		}
		rep.Loops = append(rep.Loops, LoopReport{
			Name: lp.Name, Blades: len(loopHeats[l]), State: st,
		})
		loads = append(loads, chiller.LoopLoad{
			Name: lp.Name, FlowKgH: st.FlowKgH,
			SupplyC: st.SupplyC, ReturnC: st.ReturnC, AmbientC: lp.AmbientC,
		})
	}
	plant, err := chiller.PlantAssess(rep.ITPowerW, loads)
	if err != nil {
		return nil, err
	}
	rep.Plant = plant
	return rep, nil
}

// scaleState scales the dynamic (workload) share of a package state;
// static and idle shares are load-independent.
func scaleState(st power.PackageState, dynScale float64) power.PackageState {
	for i := range st.Cores {
		if st.Cores[i].Active {
			st.Cores[i].DynWatts *= dynScale
		}
	}
	return st
}

// BladeReport is one blade's converged operating point.
type BladeReport struct {
	Rack, Slot int
	Name       string
	// HeatW is the blade's total package power (leakage included) — the
	// heat it rejects into its loop.
	HeatW   float64
	DieMaxC float64
	TCaseC  float64
}

// LoopReport is one loop's converged water state.
type LoopReport struct {
	Name   string
	Blades int
	// State holds the load-derived supply/return temperatures, flow and
	// heat (consistent with the fixed point's final temperatures to
	// within Options.TolC).
	State rack.LoopState
}

// Report is the converged fleet steady state.
type Report struct {
	Blades []BladeReport
	Loops  []LoopReport
	// Plant prices the chiller plant serving the loops, including the
	// facility PUE.
	Plant chiller.PlantReport
	// ITPowerW is the total blade heat (the facility IT load).
	ITPowerW float64
	// MaxDieC is the hottest die in the fleet.
	MaxDieC float64
	// OuterIterations is the number of outer fixed-point iterations run.
	OuterIterations int
	// Converged reports whether the residual fell below Options.TolC
	// within Options.MaxOuter iterations.
	Converged bool
	// ResidualC is the final undamped residual (°C).
	ResidualC float64
	// Classes is the number of distinct blade classes; BladeSolves the
	// total coupled solves performed (Classes × OuterIterations).
	Classes     int
	BladeSolves int
}
