package datacenter

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/chiller"
	"repro/internal/cosim"
	"repro/internal/faults"
	"repro/internal/power"
	"repro/internal/rack"
	"repro/internal/sched"
	"repro/internal/sweep"
	"repro/internal/thermal"
	"repro/internal/thermosyphon"
)

// Options tunes the nested solve. The zero value is valid: CG solver,
// auto worker pool, serial solves, warm starts on, no leakage feedback,
// no faults, throttling enabled at the paper's TCASE limit.
type Options struct {
	// Solver selects the thermal linear solver of every blade session.
	Solver thermal.Solver
	// Workers bounds the sweep pool fanning out the per-class blade
	// solves (0 = GOMAXPROCS, 1 = serial). The pool never changes
	// results; see the package comment's determinism contract.
	Workers int
	// Threads is the intra-solve team width of every blade session
	// (0 or 1 = serial). Callers compose Workers × Threads under one core
	// budget (experiments.RunConfig does the split).
	Threads int
	// Leakage scales each blade's static power with its die temperature,
	// closing the power↔temperature loop that makes the outer fixed point
	// more than a single feed-forward pass. The zero model (BetaPerC 0)
	// disables the feedback.
	Leakage power.LeakageModel
	// NoWarmStart disables the cross-iteration warm-start carry (and the
	// water re-seat); every blade solve then seeds cold. Pooled runs are
	// byte-identical to serial either way — the knob exists to measure
	// what the carry buys.
	NoWarmStart bool
	// Damping is the outer update factor α in T ← T + α·(T' − T).
	// 0 selects the default 0.8; the loop gain (plant approach ×
	// leakage sensitivity) is well below 1 for physical parameters, so
	// mild damping is a robustness margin, not a convergence crutch.
	// Under cooling faults the gain rises (hotter dies leak more, fouled
	// condensers amplify the supply response); when the residual stalls
	// or oscillates the solver halves the damping on its own, up to
	// maxDampingHalvings times, and reports the halvings it took.
	Damping float64
	// TolC is the convergence tolerance on the largest undamped per-loop
	// supply-temperature update (°C). 0 selects the default 0.01.
	TolC float64
	// MaxOuter bounds the outer iterations. 0 selects the default 40.
	MaxOuter int
	// Progress, when non-nil, is called after every outer iteration with
	// the iteration number (1-based) and the undamped residual (°C).
	Progress func(outer int, maxDeltaC float64)

	// Scenario injects cooling faults into the fleet before solving:
	// loop-level faults derate the shared water loops, design-level
	// faults derate each affected blade's thermosyphon. nil or empty =
	// healthy fleet. The scenario is applied declaratively at New time,
	// so faulted fleets keep the pooled-vs-serial byte-determinism
	// contract unchanged.
	Scenario *faults.Scenario
	// TCaseLimitC is the degraded-mode thermal constraint: blade classes
	// whose converged TCASE exceeds it (or whose coupled solve is
	// outright infeasible, e.g. leakage runaway) are throttled one DVFS
	// step at a time until they comply. 0 selects sched.TCaseMax.
	TCaseLimitC float64
	// MaxThrottleSteps bounds the DVFS steps the degraded mode may apply
	// per blade class. 0 selects every available level below nominal;
	// negative disables throttling entirely (infeasible blades are then
	// reported as such immediately).
	MaxThrottleSteps int
}

func (o Options) withDefaults() Options {
	if o.Damping == 0 {
		o.Damping = 0.8
	}
	if o.TolC == 0 {
		o.TolC = 0.01
	}
	if o.MaxOuter == 0 {
		o.MaxOuter = 40
	}
	if o.TCaseLimitC == 0 {
		o.TCaseLimitC = sched.TCaseMax
	}
	if o.MaxThrottleSteps == 0 {
		o.MaxThrottleSteps = len(power.Levels()) - 1
	}
	return o
}

// Stall-adaptation policy of the outer fixed point: after stallWindow
// consecutive iterations without the residual improving past
// stallImprove × best-so-far, the damping is halved (at most
// maxDampingHalvings times, never below minDamping).
const (
	stallWindow        = 5
	stallImprove       = 0.98
	maxDampingHalvings = 3
	minDamping         = 0.05
)

// class is one equivalence class of blades: same package state, same
// loop, same (possibly fault-derated) thermosyphon design and flow share —
// therefore byte-identical solves. It owns the warm-started solve session
// that represents every blade in the class.
type class struct {
	loop  int
	st    power.PackageState
	count int
	ses   *cosim.Session
	// design is the blade's (scenario-derated) thermosyphon design;
	// flowScale its residual share of the loop's per-blade water flow.
	design    thermosyphon.Design
	flowScale float64
	// lastWaterC is the supply temperature of the class's previous solve,
	// the reference for the warm-start re-seat.
	lastWaterC float64
}

// classKey identifies a class: blades are interchangeable exactly when
// they run the same package state on the same loop with the same faulted
// cooling (design + flow share).
type classKey struct {
	loop      int
	st        power.PackageState
	design    thermosyphon.Design
	flowScale float64
}

// Solver runs the nested datacenter solve for one topology. It keeps
// per-class sessions (and the converged loop temperatures) across Solve
// calls, so a series of solves — the hours of a diurnal sweep, a
// what-if re-plan — warm-starts from the previous converged fleet state.
// A Solver is not safe for concurrent use; Close releases the sessions.
type Solver struct {
	topo Topology
	sys  *cosim.System
	opt  Options

	// loops are the effective (scenario-derated) shared loops, index-
	// aligned with topo.Loops.
	loops []rack.SharedLoop

	classes    []*class
	bladeClass []int // flat (rack-major) blade index → class index

	temps []float64 // per-loop supply temperatures (carried across Solve calls)
}

// New builds a solver for the topology on the given blade system. All
// blades share the system (one floorplan, stack and nominal thermosyphon
// design); each blade class gets its own solve session, so class solves
// are independent and safely fan out across goroutines. A fault scenario
// in Options is applied here: derated loops and per-blade derated designs
// feed the class partition, so faulted blades simply form their own
// classes. The system must carry the Xeon power model (leakage folding
// needs the static/dynamic split).
func New(sys *cosim.System, topo Topology, opt Options) (*Solver, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if sys.Power == nil {
		return nil, fmt.Errorf("datacenter: system has no power model")
	}
	s := &Solver{topo: topo, sys: sys, opt: opt.withDefaults()}
	sc := s.opt.Scenario
	if sc != nil {
		if err := sc.Validate(); err != nil {
			return nil, err
		}
	}

	s.loops = make([]rack.SharedLoop, len(topo.Loops))
	for i, l := range topo.Loops {
		eff := l.SharedLoop
		if sc != nil {
			eff = sc.ApplyLoop(eff, l.Name)
		}
		if eff.PerBladeFlowKgH <= 0 {
			return nil, fmt.Errorf("datacenter: loop %d (%s): fault scenario leaves no water flow", i, l.Name)
		}
		s.loops[i] = eff
	}

	byKey := make(map[classKey]int)
	for _, r := range topo.Racks {
		loopName := topo.Loops[r.Loop].Name
		for _, b := range r.Blades {
			design := sys.Design
			flowScale := 1.0
			if sc != nil {
				design = sc.ApplyDesign(design, loopName, b.Name)
				flowScale = sc.FlowScale(loopName, b.Name)
			}
			if err := design.Validate(); err != nil {
				return nil, fmt.Errorf("datacenter: blade %s: faulted design invalid: %w", b.Name, err)
			}
			if flowScale <= 0 {
				return nil, fmt.Errorf("datacenter: blade %s: fault scenario leaves no water flow", b.Name)
			}
			key := classKey{loop: r.Loop, st: b.State, design: design, flowScale: flowScale}
			ci, ok := byKey[key]
			if !ok {
				ci = len(s.classes)
				byKey[key] = ci
				s.classes = append(s.classes, &class{
					loop: r.Loop, st: b.State, design: design, flowScale: flowScale,
				})
			}
			s.classes[ci].count++
			s.bladeClass = append(s.bladeClass, ci)
		}
	}
	for _, c := range s.classes {
		opts := []cosim.SessionOption{
			cosim.WithSolver(s.opt.Solver),
			cosim.CarryWarmStart(!s.opt.NoWarmStart),
		}
		if c.design != sys.Design {
			opts = append(opts, cosim.WithDesign(c.design))
		}
		if s.opt.Threads > 1 {
			opts = append(opts, cosim.WithThreads(s.opt.Threads))
		}
		c.ses = sys.NewSession(opts...)
	}
	s.temps = make([]float64, len(topo.Loops))
	for i := range s.loops {
		s.temps[i] = s.loops[i].SupplyC(0)
		// Seed the re-seat reference so the first iteration's delta is zero.
		for _, c := range s.classes {
			if c.loop == i {
				c.lastWaterC = s.temps[i]
			}
		}
	}
	return s, nil
}

// Classes returns the number of distinct blade classes the solver solves
// per outer iteration.
func (s *Solver) Classes() int { return len(s.classes) }

// Close releases every class session's worker team.
func (s *Solver) Close() error {
	for _, c := range s.classes {
		c.ses.Close()
	}
	return nil
}

// classResult is what one class solve contributes to the outer update.
type classResult struct {
	heatW      float64
	dieMaxC    float64
	tcaseC     float64
	coupleIter int
	leakIter   int
	// failed carries the class's solve-infeasibility diagnostic ("" =
	// solved). A failed class aborts the current fixed point and feeds
	// the throttle layer instead of killing the whole fleet solve.
	failed string
}

// fixedPointState is the outcome of one damped outer fixed point run.
type fixedPointState struct {
	results   []classResult
	outer     int
	converged bool
	residual  float64
	damping   float64
	halvings  int
	failed    bool // some class was infeasible at these operating points
}

// escalationCount sums the solver-ladder descents across every class
// session.
func (s *Solver) escalationCount() int {
	var n int
	for _, c := range s.classes {
		n += c.ses.SolverStats().Escalations
	}
	return n
}

// Solve runs the nested fixed point at nominal load.
func (s *Solver) Solve(ctx context.Context) (*Report, error) { return s.SolveScaled(ctx, 1) }

// SolveScaled runs the nested fixed point with every blade's per-core
// dynamic power scaled by dynScale — the fleet-wide load knob the diurnal
// sweep drives from a workload trace. Scaling is applied to the class
// states on entry; class identity (and with it the warm-start carry) is
// stable across scales.
//
// Degraded mode: classes whose coupled solve is infeasible, or whose
// converged TCASE exceeds Options.TCaseLimitC, are throttled one DVFS
// step (sched.ThrottleStep) and the fixed point re-runs, until the fleet
// is feasible or the throttle budget is exhausted — classes still failing
// then land in Report.Infeasible with their loop and blade names, and the
// report carries whatever the rest of the fleet converged to. Cancelling
// ctx aborts between outer iterations and between (and inside) the
// fanned-out blade solves, returning ctx.Err() promptly.
func (s *Solver) SolveScaled(ctx context.Context, dynScale float64) (*Report, error) {
	if dynScale < 0 {
		return nil, fmt.Errorf("datacenter: negative load scale %g", dynScale)
	}
	opt := s.opt
	baseEsc := s.escalationCount()
	steps := make([]int, len(s.classes))      // DVFS steps applied per class
	reasons := make([]string, len(s.classes)) // permanent-infeasibility diagnostics

	var fp fixedPointState
	for {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		states := make([]power.PackageState, len(s.classes))
		for i, c := range s.classes {
			states[i] = scaleState(throttledState(c.st, steps[i]), dynScale)
		}
		var err error
		fp, err = s.runFixedPoint(ctx, states)
		if err != nil {
			return nil, err
		}

		// Degraded mode: throttle every class that failed or violates the
		// thermal constraint; classes with no DVFS headroom left become
		// permanently infeasible for this solve.
		throttled := false
		for ci, r := range fp.results {
			var why string
			switch {
			case r.failed != "":
				why = r.failed
			case fp.converged && r.tcaseC > opt.TCaseLimitC:
				why = fmt.Sprintf("TCASE %.1f °C over the %.1f °C limit", r.tcaseC, opt.TCaseLimitC)
			default:
				reasons[ci] = ""
				continue
			}
			cur := throttledState(s.classes[ci].st, steps[ci])
			if _, ok := sched.ThrottleStep(cur); ok && opt.MaxThrottleSteps > 0 && steps[ci] < opt.MaxThrottleSteps {
				steps[ci]++
				throttled = true
				reasons[ci] = ""
				continue
			}
			if steps[ci] > 0 {
				why += fmt.Sprintf(" after %d DVFS step(s)", steps[ci])
			}
			reasons[ci] = why
		}
		if !throttled {
			break
		}
	}
	return s.report(fp, steps, reasons, s.escalationCount()-baseEsc)
}

// runFixedPoint runs the damped outer fixed point over the loop supply
// temperatures at the given per-class states, adapting the damping when
// the residual stalls. A class whose coupled solve fails aborts the fixed
// point (result.failed set) so the caller can throttle and retry; ctx
// cancellation aborts with ctx.Err().
func (s *Solver) runFixedPoint(ctx context.Context, states []power.PackageState) (fixedPointState, error) {
	opt := s.opt
	idx := make([]int, len(s.classes))
	for i := range idx {
		idx[i] = i
	}
	fp := fixedPointState{
		damping:  opt.Damping,
		residual: math.Inf(1),
	}
	loopHeat := make([]float64, len(s.loops))
	best := math.Inf(1)
	stall := 0

	var outer int
	for outer = 1; outer <= opt.MaxOuter; outer++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return fp, err
			}
		}
		// Inner level: one coupled (thermal ↔ thermosyphon ↔ leakage)
		// solve per blade class at the current loop temperatures, fanned
		// out across the worker pool. Results come back input-ordered.
		// Infeasibility is data, not an error: a class that cannot be
		// solved reports failed and the fleet solve degrades instead of
		// dying.
		res, err := sweep.RunState(ctx, idx,
			func() (struct{}, error) { return struct{}{}, nil },
			func(_ struct{}, ci int) (classResult, error) {
				c := s.classes[ci]
				waterC := s.temps[c.loop]
				op := thermosyphon.Operating{
					WaterInC:     waterC,
					WaterFlowKgH: s.loops[c.loop].PerBladeFlowKgH * c.flowScale,
				}
				if !opt.NoWarmStart {
					c.ses.ReseatWater(waterC - c.lastWaterC)
				}
				c.lastWaterC = waterC
				r, err := c.ses.SolveSteadyLeakage(ctx, states[ci], op, opt.Leakage)
				if err != nil {
					if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
						return classResult{}, err
					}
					return classResult{failed: err.Error()}, nil
				}
				die, err := s.sys.DieStats(&r.Result)
				if err != nil {
					return classResult{}, err
				}
				return classResult{
					heatW:      r.TotalPowerW,
					dieMaxC:    die.MaxC,
					tcaseC:     s.sys.TCase(&r.Result),
					coupleIter: r.Iterations,
					leakIter:   r.LeakageIterations,
				}, nil
			},
			sweep.Workers(opt.Workers))
		if err != nil {
			return fp, err
		}
		fp.results = res
		fp.outer = outer
		for _, r := range res {
			if r.failed != "" {
				fp.failed = true
			}
		}
		if fp.failed {
			// No meaningful loop update exists at an infeasible operating
			// point; hand the failures to the throttle layer.
			fp.converged = false
			return fp, nil
		}

		// Outer level: re-derive each loop's supply temperature from the
		// heat its blades reject. Heats accumulate in class order, so the
		// reduction is schedule-independent.
		for l := range loopHeat {
			loopHeat[l] = 0
		}
		for ci, r := range res {
			loopHeat[s.classes[ci].loop] += float64(s.classes[ci].count) * r.heatW
		}
		fp.residual = 0
		for l := range s.loops {
			d := math.Abs(s.loops[l].SupplyC(loopHeat[l]) - s.temps[l])
			if d > fp.residual {
				fp.residual = d
			}
		}
		if opt.Progress != nil {
			opt.Progress(outer, fp.residual)
		}
		if fp.residual < opt.TolC {
			fp.converged = true
			return fp, nil
		}
		// Stall adaptation: when the residual stops improving (stall or
		// oscillation — an overdamped loop gain shows up the same way),
		// halve the damping and keep iterating with the remaining budget.
		if fp.residual < best*stallImprove {
			best = fp.residual
			stall = 0
		} else if stall++; stall >= stallWindow && fp.halvings < maxDampingHalvings && fp.damping > minDamping {
			fp.damping = math.Max(fp.damping/2, minDamping)
			fp.halvings++
			stall = 0
		}
		for l := range s.loops {
			s.temps[l] += fp.damping * (s.loops[l].SupplyC(loopHeat[l]) - s.temps[l])
		}
	}
	fp.outer = opt.MaxOuter
	return fp, nil
}

// throttledState applies n DVFS throttle steps to a nominal state.
func throttledState(st power.PackageState, n int) power.PackageState {
	for i := 0; i < n; i++ {
		st, _ = sched.ThrottleStep(st)
	}
	return st
}

// report assembles the converged fleet state into a Report.
func (s *Solver) report(fp fixedPointState, steps []int, reasons []string, escalations int) (*Report, error) {
	rep := &Report{
		OuterIterations: fp.outer,
		Converged:       fp.converged,
		ResidualC:       fp.residual,
		Classes:         len(s.classes),
		BladeSolves:     fp.outer * len(s.classes),
		DampingHalvings: fp.halvings,
		FinalDamping:    fp.damping,
		Escalations:     escalations,
	}
	if s.opt.Scenario != nil {
		rep.Scenario = s.opt.Scenario.Name
	}
	// Per-blade rows in flat (rack-major) order, expanded from the class
	// results; per-loop heats re-accumulated in the same order so the
	// report is independent of the class partition.
	loopHeats := make([][]float64, len(s.topo.Loops))
	flat := 0
	for ri, r := range s.topo.Racks {
		for bi, b := range r.Blades {
			ci := s.bladeClass[flat]
			cr := fp.results[ci]
			br := BladeReport{
				Rack: ri, Slot: bi, Name: b.Name,
				HeatW: cr.heatW, DieMaxC: cr.dieMaxC, TCaseC: cr.tcaseC,
				ThrottleSteps: steps[ci],
				Infeasible:    reasons[ci] != "",
			}
			rep.Blades = append(rep.Blades, br)
			if steps[ci] > 0 {
				rep.ThrottledBlades++
				if steps[ci] > rep.MaxThrottleSteps {
					rep.MaxThrottleSteps = steps[ci]
				}
			}
			if br.Infeasible {
				rep.Infeasible = append(rep.Infeasible, InfeasibleBlade{
					Loop: s.topo.Loops[r.Loop].Name, Rack: ri, Slot: bi,
					Name: b.Name, Reason: reasons[ci],
				})
			}
			rep.ITPowerW += cr.heatW
			if cr.dieMaxC > rep.MaxDieC {
				rep.MaxDieC = cr.dieMaxC
			}
			loopHeats[r.Loop] = append(loopHeats[r.Loop], cr.heatW)
			flat++
		}
	}
	loads := make([]chiller.LoopLoad, 0, len(s.topo.Loops))
	for l := range s.loops {
		lp := s.loops[l]
		name := s.topo.Loops[l].Name
		st, err := lp.Boundary(loopHeats[l])
		if err != nil {
			return nil, fmt.Errorf("datacenter: loop %d (%s): %w", l, name, err)
		}
		rep.Loops = append(rep.Loops, LoopReport{
			Name: name, Blades: len(loopHeats[l]), State: st,
		})
		loads = append(loads, chiller.LoopLoad{
			Name: name, FlowKgH: st.FlowKgH,
			SupplyC: st.SupplyC, ReturnC: st.ReturnC, AmbientC: lp.AmbientC,
		})
	}
	plant, err := chiller.PlantAssess(rep.ITPowerW, loads)
	if err != nil {
		return nil, err
	}
	rep.Plant = plant
	return rep, nil
}

// scaleState scales the dynamic (workload) share of a package state;
// static and idle shares are load-independent.
func scaleState(st power.PackageState, dynScale float64) power.PackageState {
	for i := range st.Cores {
		if st.Cores[i].Active {
			st.Cores[i].DynWatts *= dynScale
		}
	}
	return st
}

// BladeReport is one blade's converged operating point.
type BladeReport struct {
	Rack, Slot int
	Name       string
	// HeatW is the blade's total package power (leakage included) — the
	// heat it rejects into its loop.
	HeatW   float64
	DieMaxC float64
	TCaseC  float64
	// ThrottleSteps is how many DVFS levels the degraded mode stepped
	// this blade down to reach a feasible operating point (0 = full
	// speed).
	ThrottleSteps int
	// Infeasible marks a blade that could not be brought to a feasible
	// operating point even at the lowest DVFS level; its row carries the
	// zero operating point and Report.Infeasible names the reason.
	Infeasible bool
}

// InfeasibleBlade names one blade the degraded mode could not save, and
// why — the structured alternative to a bare Converged:false.
type InfeasibleBlade struct {
	Loop       string
	Rack, Slot int
	Name       string
	Reason     string
}

// LoopReport is one loop's converged water state.
type LoopReport struct {
	Name   string
	Blades int
	// State holds the load-derived supply/return temperatures, flow and
	// heat (consistent with the fixed point's final temperatures to
	// within Options.TolC).
	State rack.LoopState
}

// Report is the converged fleet steady state.
type Report struct {
	Blades []BladeReport
	Loops  []LoopReport
	// Plant prices the chiller plant serving the loops, including the
	// facility PUE.
	Plant chiller.PlantReport
	// ITPowerW is the total blade heat (the facility IT load).
	ITPowerW float64
	// MaxDieC is the hottest die in the fleet.
	MaxDieC float64
	// OuterIterations is the number of outer fixed-point iterations the
	// final throttle round ran.
	OuterIterations int
	// Converged reports whether the residual fell below Options.TolC
	// within Options.MaxOuter iterations.
	Converged bool
	// ResidualC is the final undamped residual (°C).
	ResidualC float64
	// Classes is the number of distinct blade classes; BladeSolves the
	// total coupled solves of the final round (Classes × OuterIterations).
	Classes     int
	BladeSolves int

	// Scenario names the fault scenario the fleet was solved under ("" =
	// healthy).
	Scenario string
	// DampingHalvings counts the stall-adaptation descents of the final
	// round's fixed point; FinalDamping is the damping it ended on.
	DampingHalvings int
	FinalDamping    float64
	// Escalations counts solver-ladder descents across every blade solve
	// of this call (surfaced, never hidden).
	Escalations int
	// ThrottledBlades counts blades the degraded mode stepped down;
	// MaxThrottleSteps is the deepest step taken.
	ThrottledBlades  int
	MaxThrottleSteps int
	// Infeasible names the blades that have no feasible operating point
	// even fully throttled. Empty on a healthy feasible fleet.
	Infeasible []InfeasibleBlade
}

// Feasible reports a converged fleet with every blade at a feasible
// operating point.
func (r *Report) Feasible() bool { return r.Converged && len(r.Infeasible) == 0 }
