package baselines

import (
	"testing"

	"repro/internal/core"
	"repro/internal/floorplan"
	"repro/internal/power"
	"repro/internal/thermosyphon"
	"repro/internal/workload"
)

func TestSeuretDesign(t *testing.T) {
	d := SeuretDesign()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Orientation.Horizontal() {
		t.Fatal("baseline design should use the non-optimized N-S channels")
	}
	if d.FillingRatio >= thermosyphon.DefaultDesign().FillingRatio {
		t.Fatal("baseline fill should differ from the optimized 55%")
	}
}

func TestPackAndCapAlwaysFmax(t *testing.T) {
	for _, b := range workload.All() {
		for _, q := range []workload.QoS{workload.QoS1x, workload.QoS2x, workload.QoS3x} {
			cfg, err := PackAndCapConfig(b, q)
			if err != nil {
				t.Fatalf("%s @%s: %v", b.Name, q, err)
			}
			if cfg.Freq != power.FMax {
				t.Fatalf("pack&cap must run at fmax, got %v", cfg)
			}
			if cfg.Threads != 2*cfg.Cores {
				t.Fatalf("pack&cap packs two threads per core, got %v", cfg)
			}
			if !q.Satisfied(b, cfg) {
				t.Fatalf("%s @%s: %v violates QoS", b.Name, q, cfg)
			}
		}
	}
}

func TestPackAndCapUsesFewestCores(t *testing.T) {
	b, _ := workload.ByName("swaptions")
	cfg, err := PackAndCapConfig(b, workload.QoS3x)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Cores > 1 {
		smaller := workload.Config{Cores: cfg.Cores - 1, Threads: 2 * (cfg.Cores - 1), Freq: power.FMax}
		if workload.QoS3x.Satisfied(b, smaller) {
			t.Fatalf("pack&cap chose %v but %v also satisfies", cfg, smaller)
		}
	}
}

func TestPackAndCapNeverCheaperThanProposed(t *testing.T) {
	// The proposed selection minimizes power over the whole space, so it
	// can never be beaten by pack&cap's fmax-only scan.
	for _, b := range workload.All() {
		for _, q := range []workload.QoS{workload.QoS2x, workload.QoS3x} {
			pc, err := PackAndCapConfig(b, q)
			if err != nil {
				t.Fatal(err)
			}
			prop, err := core.SelectConfig(workload.NewProfile(b), q)
			if err != nil {
				t.Fatal(err)
			}
			if b.PackagePower(prop, power.POLL) > b.PackagePower(pc, power.POLL)+1e-9 {
				t.Fatalf("%s @%s: proposed %.1f W worse than pack&cap %.1f W",
					b.Name, q, b.PackagePower(prop, power.POLL), b.PackagePower(pc, power.POLL))
			}
		}
	}
}

func TestCoskunMappingCorners(t *testing.T) {
	b, _ := workload.ByName("canneal")
	cfg := workload.Config{Cores: 4, Threads: 8, Freq: power.FMax}
	m, err := CoskunMapping(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := core.ActiveRowsHistogram(m.ActiveCores)
	if rows[0] != 2 || rows[3] != 2 {
		t.Fatalf("Coskun should fill corners, rows %v", rows)
	}
	// C-state-agnostic: same placement as for a POLL-bound workload.
	rb, _ := workload.ByName("raytrace")
	m2, _ := CoskunMapping(rb, cfg)
	for i := range m.ActiveCores {
		if m.ActiveCores[i] != m2.ActiveCores[i] {
			t.Fatal("Coskun placement must ignore C-states")
		}
	}
	if _, err := CoskunMapping(b, workload.Config{}); err == nil {
		t.Fatal("invalid config must error")
	}
}

func TestSabryMappingClustersAtInlet(t *testing.T) {
	b, _ := workload.ByName("canneal")
	cfg := workload.Config{Cores: 4, Threads: 8, Freq: power.FMax}
	m, err := SabryMapping(b, cfg, thermosyphon.InletWest)
	if err != nil {
		t.Fatal(err)
	}
	// All four actives must be the west column (Cores 5-8 = indices 4-7).
	for _, c := range m.ActiveCores {
		if _, col := floorplan.CoreGridPos(c); col != 0 {
			t.Fatalf("inlet-west Sabry should fill the west column, got %v", m.ActiveCores)
		}
	}
	// With a north inlet it should fill the north rows instead.
	mN, err := SabryMapping(b, cfg, thermosyphon.InletNorth)
	if err != nil {
		t.Fatal(err)
	}
	rows := core.ActiveRowsHistogram(mN.ActiveCores)
	if rows[0] != 2 || rows[1] != 2 {
		t.Fatalf("inlet-north Sabry should fill north rows, got %v", rows)
	}
	if _, err := SabryMapping(b, workload.Config{}, thermosyphon.InletWest); err == nil {
		t.Fatal("invalid config must error")
	}
}

func TestSabryEastAndSouth(t *testing.T) {
	b, _ := workload.ByName("dedup")
	cfg := workload.Config{Cores: 2, Threads: 4, Freq: power.FMid}
	mE, err := SabryMapping(b, cfg, thermosyphon.InletEast)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range mE.ActiveCores {
		if _, col := floorplan.CoreGridPos(c); col != 1 {
			t.Fatalf("inlet-east should prefer the east column, got %v", mE.ActiveCores)
		}
	}
	mS, err := SabryMapping(b, cfg, thermosyphon.InletSouth)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range mS.ActiveCores {
		if r, _ := floorplan.CoreGridPos(c); r != 3 {
			t.Fatalf("inlet-south should prefer the south row, got %v", mS.ActiveCores)
		}
	}
}
