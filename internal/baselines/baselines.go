// Package baselines implements the state-of-the-art policies the paper
// compares against in Table II:
//
//   - the thermosyphon design of Seuret et al. (ITHERM'18) [8], sized for a
//     uniform heat flux without workload awareness;
//   - the Pack & Cap configuration selection of Cochran et al. (MICRO'11)
//     [27], which packs threads onto the fewest cores at maximum frequency;
//   - the temperature-aware balancing of Coskun et al. (DATE'07) [9];
//   - the inlet-first mapping of Sabry et al. (TCAD'11) [7], designed for
//     inter-layer liquid-cooled 3-D MPSoCs.
package baselines

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/floorplan"
	"repro/internal/power"
	"repro/internal/thermosyphon"
	"repro/internal/workload"
)

// SeuretDesign returns the thermosyphon design of [8]: the same hardware
// family as the paper's proposal but sized assuming the heat flux is the
// total die power spread uniformly over the package (§III-B), hence
// without the workload-aware orientation and filling-ratio choices —
// north-south channels and a conservative 45 % fill.
func SeuretDesign() thermosyphon.Design {
	d := thermosyphon.DefaultDesign()
	d.Orientation = thermosyphon.InletNorth
	d.FillingRatio = 0.45
	return d
}

// PackAndCapConfig implements the configuration selection of [27]: run at
// maximum frequency and pack two threads per core onto the fewest cores
// that still meet the QoS constraint (thread packing under a cap, with the
// cap set by the QoS rather than power).
func PackAndCapConfig(b workload.Benchmark, q workload.QoS) (workload.Config, error) {
	for nc := 1; nc <= floorplan.NumCores; nc++ {
		cfg := workload.Config{Cores: nc, Threads: 2 * nc, Freq: power.FMax}
		if q.Satisfied(b, cfg) {
			return cfg, nil
		}
	}
	return workload.Config{}, fmt.Errorf("baselines: pack&cap found no configuration for %s at QoS %s", b.Name, q)
}

// CoskunMapping implements the temperature-aware balancing of [9]:
// corner-first placement at maximum spacing, independent of the cooling
// technology and of the idle C-state.
func CoskunMapping(b workload.Benchmark, cfg workload.Config) (core.Mapping, error) {
	if !cfg.Valid() {
		return core.Mapping{}, fmt.Errorf("baselines: invalid configuration %v", cfg)
	}
	order := []int{
		floorplan.CoreAtGridPos(0, 0), floorplan.CoreAtGridPos(3, 1),
		floorplan.CoreAtGridPos(0, 1), floorplan.CoreAtGridPos(3, 0),
		floorplan.CoreAtGridPos(1, 0), floorplan.CoreAtGridPos(2, 1),
		floorplan.CoreAtGridPos(1, 1), floorplan.CoreAtGridPos(2, 0),
	}
	m := core.Mapping{
		ActiveCores: append([]int(nil), order[:cfg.Cores]...),
		IdleState:   power.DeepestStateWithin(b.IdleTolerance),
		Config:      cfg,
	}
	sort.Ints(m.ActiveCores)
	return m, nil
}

// SabryMapping implements the liquid-cooling policy of [7]: map threads to
// the cores nearest the coolant inlet first. With the evaporator inlet on
// the west this fills the west core column top-to-bottom, clustering the
// heat — the behaviour §VIII-A shows is counterproductive for a thermosyphon.
func SabryMapping(b workload.Benchmark, cfg workload.Config, o thermosyphon.Orientation) (core.Mapping, error) {
	if !cfg.Valid() {
		return core.Mapping{}, fmt.Errorf("baselines: invalid configuration %v", cfg)
	}
	fp := floorplan.BroadwellEP()
	type coreDist struct {
		idx  int
		dist float64
	}
	ds := make([]coreDist, floorplan.NumCores)
	for i := 0; i < floorplan.NumCores; i++ {
		blk, _ := fp.Block(floorplan.CoreName(i))
		var d float64
		switch o {
		case thermosyphon.InletWest:
			d = blk.Rect.CenterX()
		case thermosyphon.InletEast:
			d = fp.Width - blk.Rect.CenterX()
		case thermosyphon.InletNorth:
			d = blk.Rect.CenterY()
		case thermosyphon.InletSouth:
			d = fp.Height - blk.Rect.CenterY()
		}
		ds[i] = coreDist{idx: i, dist: d}
	}
	sort.SliceStable(ds, func(i, j int) bool {
		if ds[i].dist != ds[j].dist {
			return ds[i].dist < ds[j].dist
		}
		return ds[i].idx < ds[j].idx
	})
	m := core.Mapping{
		IdleState: power.DeepestStateWithin(b.IdleTolerance),
		Config:    cfg,
	}
	for _, cd := range ds[:cfg.Cores] {
		m.ActiveCores = append(m.ActiveCores, cd.idx)
	}
	sort.Ints(m.ActiveCores)
	return m, nil
}
