// Package repro is a from-scratch Go reproduction of "Enhancing Two-Phase
// Cooling Efficiency through Thermal-Aware Workload Mapping for
// Power-Hungry Servers" (Iranfar, Pahlevan, Zapater, Atienza — DATE 2019).
//
// The public entry points live in the cmd/ tools and the examples/
// programs; the library itself is organized under internal/ (see DESIGN.md
// for the system inventory and EXPERIMENTS.md for the paper-vs-measured
// record of every table and figure).
package repro
