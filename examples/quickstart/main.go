// Quickstart: run one PARSEC workload through the paper's full pipeline —
// QoS-aware configuration selection (Algorithm 1), thermal-aware thread
// mapping, and the coupled thermosyphon/thermal co-simulation — and print
// the resulting die thermal profile.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/render"
	"repro/internal/thermosyphon"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Stdout, experiments.Medium); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer, res experiments.Resolution) error {
	// 1. Pick a workload and a QoS constraint (2x degradation allowed).
	bench, err := workload.ByName("ferret")
	if err != nil {
		return err
	}
	const qos = workload.QoS2x

	// 2. Algorithm 1: cheapest configuration meeting the QoS, then the
	// thermosyphon-aware thread mapping.
	mapping, err := core.Plan(bench, qos)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s @%s → config %v, cores %v, idle state %v\n",
		bench.Name, qos, mapping.Config, mapping.ActiveCores, mapping.IdleState)

	// 3. Build the simulated blade: Broadwell-EP die + package stack +
	// the paper's R236fa thermosyphon design, and solve the coupled
	// steady state at the design operating point (7 kg/h water at 30 °C).
	sys, err := experiments.NewSystem(thermosyphon.DefaultDesign(), res)
	if err != nil {
		return err
	}
	die, pkg, result, err := experiments.SolveMapping(sys, bench, mapping, thermosyphon.DefaultOperating())
	if err != nil {
		return err
	}

	// 4. Report the paper's metrics and render the die map.
	fmt.Fprintf(w, "package power %.1f W, saturation %.1f °C, exit quality %.2f\n",
		result.TotalPowerW, result.Syphon.Condenser.TsatC, result.Syphon.Loop.ExitQuality)
	fmt.Fprintf(w, "die:     θmax %.1f °C  θavg %.1f °C  ∇θmax %.2f °C/mm\n", die.MaxC, die.MeanC, die.MaxGradCPerMM)
	fmt.Fprintf(w, "package: θmax %.1f °C  θavg %.1f °C  ∇θmax %.2f °C/mm\n", pkg.MaxC, pkg.MeanC, pkg.MaxGradCPerMM)
	return render.ASCIIMap(w, sys.Thermal.Grid(), sys.DieTemps(result))
}
