// Designsweep walks the §VI design space of the thermosyphon: evaporator
// orientation, refrigerant choice and filling ratio, all evaluated at the
// worst-case workload, then picks the water operating point — the
// workload- and platform-aware design flow the paper advocates. All three
// grids fan out across the internal/sweep worker pool, which preserves
// input order, so the printed tables match the serial scan exactly. The
// example also demonstrates the context plumbing: one ctx flows from here
// through the sweep pool into the coupled solves, so the whole walk is
// cancellable.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/cosim"
	"repro/internal/experiments"
	"repro/internal/power"
	"repro/internal/refrigerant"
	"repro/internal/sweep"
	"repro/internal/thermosyphon"
	"repro/internal/workload"
)

func main() {
	if err := run(context.Background(), os.Stdout, experiments.Coarse); err != nil {
		log.Fatal(err)
	}
}

func run(ctx context.Context, w io.Writer, res experiments.Resolution) error {
	bench, cfg := workload.WorstCase()
	fmt.Fprintf(w, "design workload (worst case): %s %v → %.1f W\n\n",
		bench.Name, cfg, bench.PackagePower(cfg, power.POLL))
	mapping := experiments.FullLoadMapping(cfg, power.POLL)

	solve := func(d thermosyphon.Design) (dieMax, pkgMax float64, err error) {
		sys, err := experiments.NewSystem(d, res)
		if err != nil {
			return 0, 0, err
		}
		die, pkg, _, err := experiments.SolveMapping(sys, bench, mapping, thermosyphon.DefaultOperating())
		if err != nil {
			return 0, 0, err
		}
		return die.MaxC, pkg.MaxC, nil
	}

	// Orientation sweep (§VI-A): which edge should the inlet sit on?
	type oTemps struct{ die, pkg float64 }
	oRes, err := sweep.Run(ctx, thermosyphon.Orientations(), func(o thermosyphon.Orientation) (oTemps, error) {
		d := thermosyphon.DefaultDesign()
		d.Orientation = o
		die, pkg, err := solve(d)
		return oTemps{die: die, pkg: pkg}, err
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "orientation sweep:")
	for i, o := range thermosyphon.Orientations() {
		fmt.Fprintf(w, "  %-12v die θmax %.1f °C  pkg θmax %.1f °C\n", o, oRes[i].die, oRes[i].pkg)
	}

	// Refrigerant and filling ratio (§VI-B): dryout vs condenser flooding.
	fills := []float64{0.35, 0.45, 0.55, 0.65, 0.75}
	grid := sweep.Cross(refrigerant.Candidates(), fills)
	dies, err := sweep.Run(ctx, grid, func(p sweep.Pair[*refrigerant.Fluid, float64]) (float64, error) {
		d := thermosyphon.DefaultDesign()
		d.Fluid = p.A
		d.FillingRatio = p.B
		die, _, err := solve(d)
		return die, err
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "\nrefrigerant × filling ratio sweep (die θmax, °C):")
	fmt.Fprint(w, "  fluid   ")
	for _, fr := range fills {
		fmt.Fprintf(w, "  %4.0f%%", fr*100)
	}
	fmt.Fprintln(w)
	for i, fl := range refrigerant.Candidates() {
		fmt.Fprintf(w, "  %-8s", fl.Name())
		for j := range fills {
			fmt.Fprintf(w, "  %5.1f", dies[i*len(fills)+j])
		}
		fmt.Fprintln(w)
	}

	// Water operating point (§VI-C): lowest flow, warmest water that
	// keeps TCASE below 85 °C — sweep.First scans the grid cheapest-first
	// with one reused system per worker and keeps the serial early exit.
	fmt.Fprintln(w, "\nwater operating point selection:")
	d := thermosyphon.DefaultDesign()
	ops := sweep.Cross([]float64{3, 5, 7}, []float64{45, 40, 35, 30})
	i, tc, found, err := sweep.First(ctx, ops,
		func() (*cosim.System, error) { return experiments.NewSystem(d, res) },
		func(sys *cosim.System, p sweep.Pair[float64, float64]) (float64, error) {
			op := thermosyphon.Operating{WaterInC: p.B, WaterFlowKgH: p.A}
			st := core.PackageState(bench, mapping)
			r, err := sys.SolveSteady(st, op)
			if err != nil {
				return 0, err
			}
			return sys.TCase(r), nil
		},
		func(tc float64) bool { return tc < 85 })
	if err != nil {
		return err
	}
	if !found {
		fmt.Fprintln(w, "  no feasible water point found")
		return nil
	}
	fmt.Fprintf(w, "  first feasible: %.0f kg/h @ %.0f °C → TCASE %.1f °C (limit 85)\n",
		ops[i].A, ops[i].B, tc)
	return nil
}
