// Designsweep walks the §VI design space of the thermosyphon: evaporator
// orientation, refrigerant choice and filling ratio, all evaluated at the
// worst-case workload, then picks the water operating point — the
// workload- and platform-aware design flow the paper advocates.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/power"
	"repro/internal/refrigerant"
	"repro/internal/thermosyphon"
	"repro/internal/workload"
)

func main() {
	bench, cfg := workload.WorstCase()
	fmt.Printf("design workload (worst case): %s %v → %.1f W\n\n",
		bench.Name, cfg, bench.PackagePower(cfg, power.POLL))
	mapping := experiments.FullLoadMapping(cfg, power.POLL)

	// Orientation sweep (§VI-A): which edge should the inlet sit on?
	fmt.Println("orientation sweep:")
	for _, o := range thermosyphon.Orientations() {
		d := thermosyphon.DefaultDesign()
		d.Orientation = o
		die, pkg := solve(d, bench, mapping)
		fmt.Printf("  %-12v die θmax %.1f °C  pkg θmax %.1f °C\n", o, die, pkg)
	}

	// Refrigerant and filling ratio (§VI-B): dryout vs condenser flooding.
	fmt.Println("\nrefrigerant × filling ratio sweep (die θmax, °C):")
	fills := []float64{0.35, 0.45, 0.55, 0.65, 0.75}
	fmt.Print("  fluid   ")
	for _, fr := range fills {
		fmt.Printf("  %4.0f%%", fr*100)
	}
	fmt.Println()
	for _, fl := range refrigerant.Candidates() {
		fmt.Printf("  %-8s", fl.Name())
		for _, fr := range fills {
			d := thermosyphon.DefaultDesign()
			d.Fluid = fl
			d.FillingRatio = fr
			die, _ := solve(d, bench, mapping)
			fmt.Printf("  %5.1f", die)
		}
		fmt.Println()
	}

	// Water operating point (§VI-C): lowest flow, warmest water that
	// keeps TCASE below 85 °C.
	fmt.Println("\nwater operating point selection:")
	d := thermosyphon.DefaultDesign()
	sys, err := experiments.NewSystem(d, experiments.Coarse)
	if err != nil {
		log.Fatal(err)
	}
	for _, flow := range []float64{3, 5, 7} {
		for _, tw := range []float64{45, 40, 35, 30} {
			op := thermosyphon.Operating{WaterInC: tw, WaterFlowKgH: flow}
			st := core.PackageState(bench, mapping)
			res, err := sys.SolveSteady(st, op)
			if err != nil {
				log.Fatal(err)
			}
			tc := sys.TCase(res)
			if tc < 85 {
				fmt.Printf("  first feasible: %.0f kg/h @ %.0f °C → TCASE %.1f °C (limit 85)\n", flow, tw, tc)
				return
			}
		}
	}
	fmt.Println("  no feasible water point found")
}

func solve(d thermosyphon.Design, b workload.Benchmark, m core.Mapping) (dieMax, pkgMax float64) {
	sys, err := experiments.NewSystem(d, experiments.Coarse)
	if err != nil {
		log.Fatal(err)
	}
	die, pkg, _, err := experiments.SolveMapping(sys, b, m, thermosyphon.DefaultOperating())
	if err != nil {
		log.Fatal(err)
	}
	return die.MaxC, pkg.MaxC
}
