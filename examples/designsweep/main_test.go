package main

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestDesignSweepRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), &buf, experiments.Coarse); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"orientation sweep:",
		"refrigerant × filling ratio sweep",
		"R236fa",
		"first feasible:",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
