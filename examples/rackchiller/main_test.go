package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestRackChillerRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, experiments.Coarse); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"allocated 13 apps over 4 blades",
		"hottest die in the rack:",
		"shared loop at 30 °C:",
		"same rack at 20 °C water:",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
