// Rackchiller demonstrates the rack-level constraint of §V: a whole PARSEC
// mix is allocated across four CPU blades that share one chiller water
// loop, the blade heats are simulated, and the shared-loop cooling cost is
// compared between a balanced and a skewed allocation.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/rack"
	"repro/internal/thermosyphon"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Stdout, experiments.Coarse); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer, res experiments.Resolution) error {
	// Submit the full PARSEC roster at 2x QoS.
	var apps []rack.App
	for _, b := range workload.All() {
		apps = append(apps, rack.App{Bench: b, QoS: workload.QoS2x})
	}

	const nBlades = 4
	assignments, err := rack.Allocate(apps, nBlades)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "allocated %d apps over %d blades (imbalance %.1f W):\n",
		len(apps), nBlades, rack.Imbalance(assignments))
	for _, a := range assignments {
		fmt.Fprintf(w, "  blade %d (%.1f W):", a.CPU, a.PowerW)
		for _, app := range a.Apps {
			fmt.Fprintf(w, " %s", app.Bench.Name)
		}
		fmt.Fprintln(w)
	}

	// Simulate each blade: run its heaviest app through Algorithm 1 and
	// the coupled solver to get the actual heat into the water loop.
	sys, err := experiments.NewSystem(thermosyphon.DefaultDesign(), res)
	if err != nil {
		return err
	}
	var bladeHeat []float64
	var hottest float64
	for _, a := range assignments {
		if len(a.Apps) == 0 {
			bladeHeat = append(bladeHeat, 0)
			continue
		}
		app := a.Apps[0] // heaviest first by LPT construction
		m, err := core.Plan(app.Bench, app.QoS)
		if err != nil {
			return err
		}
		die, _, res, err := experiments.SolveMapping(sys, app.Bench, m, thermosyphon.DefaultOperating())
		if err != nil {
			return err
		}
		bladeHeat = append(bladeHeat, res.TotalPowerW)
		if die.MaxC > hottest {
			hottest = die.MaxC
		}
		fmt.Fprintf(w, "  blade %d lead app %-13s → %.1f W, die θmax %.1f °C\n",
			a.CPU, app.Bench.Name, res.TotalPowerW, die.MaxC)
	}
	fmt.Fprintf(w, "hottest die in the rack: %.1f °C\n\n", hottest)

	// Cost the shared loop: all blades get the same water temperature
	// (one chiller per rack), so the hottest blade dictates it.
	loop := rack.SharedLoop{SetpointC: 30, PerBladeFlowKgH: 7, AmbientC: 35}
	budget, err := loop.Cost(bladeHeat)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "shared loop at %.0f °C: heat %.1f W, water ΔT %.2f °C, Eq.(1) %.1f W, chiller %.1f W\n",
		loop.SetpointC, budget.HeatW, budget.WaterDeltaT, budget.Eq1PowerW, budget.ChillerPowerW)

	// What if the rack had to run 10 °C colder water because one blade
	// used a thermal-unaware mapping? (§VIII-B's argument at rack scale.)
	cold := rack.SharedLoop{SetpointC: 20, PerBladeFlowKgH: 7, AmbientC: 35}
	coldBudget, err := cold.Cost(bladeHeat)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "same rack at %.0f °C water: chiller %.1f W (%.0f%% more)\n",
		cold.SetpointC, coldBudget.ChillerPowerW,
		(coldBudget.ChillerPowerW/budget.ChillerPowerW-1)*100)
	return nil
}
