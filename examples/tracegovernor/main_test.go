package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestTraceGovernorRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, experiments.Coarse); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"trace for fluidanimate",
		"nominal run: peak TCASE",
		"governed run with limit",
		"total actions",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
