// Tracegovernor runs a phase-annotated workload trace through the
// transient co-simulation with the paper's runtime policy in the loop,
// printing a per-second timeline of die temperature, case temperature,
// valve position and frequency.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sched"
	"repro/internal/thermosyphon"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Stdout, experiments.Coarse); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer, res experiments.Resolution) error {
	bench, err := workload.ByName("fluidanimate")
	if err != nil {
		return err
	}
	trace := workload.SynthesizeTrace(bench, 2026)
	fmt.Fprintf(w, "trace for %s (%.0f s total):\n", bench.Name, trace.TotalDuration().Seconds())
	for _, p := range trace.Phases {
		fmt.Fprintf(w, "  %-10s %4.0fs  dyn×%.2f mem×%.2f\n",
			p.Name, p.Duration.Seconds(), p.DynScale, p.MemScale)
	}

	sys, err := experiments.NewSystem(thermosyphon.DefaultDesign(), res)
	if err != nil {
		return err
	}
	mapping, err := core.Plan(bench, workload.QoS1x)
	if err != nil {
		return err
	}

	// Run once at the design point, then once with a tightened limit to
	// watch the §VII control law (valve first, DVFS second) execute.
	gov := sched.NewGovernor(sys)
	nominal, err := gov.Run(trace, mapping, workload.QoS1x, thermosyphon.DefaultOperating())
	if err != nil {
		return err
	}
	peak := 0.0
	for _, s := range nominal.Samples {
		if s.TCaseC > peak {
			peak = s.TCaseC
		}
	}
	fmt.Fprintf(w, "\nnominal run: peak TCASE %.1f °C, %d actions\n", peak, len(nominal.Actions))

	gov2 := sched.NewGovernor(sys)
	gov2.TCaseLimit = peak - 1.5
	governed, err := gov2.Run(trace, mapping, workload.QoS1x, thermosyphon.DefaultOperating())
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "governed run with limit %.1f °C:\n", gov2.TCaseLimit)
	fmt.Fprintln(w, "  t(s)  phase       die(°C)  tcase(°C)  flow(kg/h)  freq(GHz)  actions")
	for _, s := range governed.Samples {
		fmt.Fprintf(w, "  %4.0f  %-10s  %6.1f  %8.1f  %9.0f  %8.1f  %7d\n",
			s.Time, s.Phase, s.DieMaxC, s.TCaseC, s.FlowKgH, float64(s.Freq), s.Actions)
	}
	fmt.Fprintf(w, "total actions %d, emergencies %d\n", len(governed.Actions), governed.Emergencies)
	return nil
}
