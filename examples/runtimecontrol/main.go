// Runtimecontrol exercises the paper's runtime loop (§VII): a transient
// warm-up of the blade followed by a synthetic thermal emergency that the
// controller resolves by opening the water valve first and only touching
// DVFS when the valve is exhausted.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sched"
	"repro/internal/thermal"
	"repro/internal/thermosyphon"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Stdout, experiments.Coarse); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer, res experiments.Resolution) error {
	sys, err := experiments.NewSystem(thermosyphon.DefaultDesign(), res)
	if err != nil {
		return err
	}
	bench, err := workload.ByName("x264")
	if err != nil {
		return err
	}
	mapping, err := core.Plan(bench, workload.QoS1x)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "workload %s @1x → %v on cores %v\n\n", bench.Name, mapping.Config, mapping.ActiveCores)

	// Transient warm-up: march the RC network from a cold start with the
	// converged boundary, watching the die approach steady state.
	st := core.PackageState(bench, mapping)
	op := thermosyphon.DefaultOperating()
	res2, err := sys.SolveSteady(st, op)
	if err != nil {
		return err
	}
	steadyDie, err := sys.DieStats(res2)
	if err != nil {
		return err
	}
	powerCells, err := sys.PowerCells(res2.BlockPower)
	if err != nil {
		return err
	}
	field := sys.Thermal.UniformField(30)
	fmt.Fprintln(w, "transient warm-up (0.5 s steps):")
	for step := 1; step <= 10; step++ {
		field, err = sys.Thermal.StepTransient(field, 0.5, map[int][]float64{0: powerCells}, res2.BC)
		if err != nil {
			return err
		}
		temps, err := field.LayerByName(thermal.LayerDie)
		if err != nil {
			return err
		}
		max := temps[0]
		for _, t := range temps {
			if t > max {
				max = t
			}
		}
		fmt.Fprintf(w, "  t=%4.1fs die θmax %.1f °C (steady %.1f)\n", float64(step)*0.5, max, steadyDie.MaxC)
	}

	// Synthetic emergency: clamp the case-temperature limit just below
	// the current operating point and let the controller react.
	fmt.Fprintln(w, "\nruntime regulation under a synthetic emergency:")
	ctl := sched.NewController(sys)
	out, err := ctl.Regulate(nil, bench, mapping, workload.QoS1x)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  nominal: TCASE %.1f °C, no action needed (%d actions)\n", out.TCase, len(out.Actions))

	ctl2 := sched.NewController(sys)
	ctl2.TCaseLimit = out.TCase - 2
	out2, err := ctl2.Regulate(nil, bench, mapping, workload.QoS1x)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  with limit %.1f °C the controller acted %d times:\n", ctl2.TCaseLimit, len(out2.Actions))
	for _, a := range out2.Actions {
		switch a.Kind {
		case "flow":
			fmt.Fprintf(w, "    valve → %.0f kg/h\n", a.FlowKgH)
		case "dvfs":
			fmt.Fprintf(w, "    frequency → %.1f GHz\n", float64(a.Freq))
		}
	}
	fmt.Fprintf(w, "  final: TCASE %.1f °C at %.0f kg/h (emergency=%v)\n",
		out2.TCase, out2.Op.WaterFlowKgH, out2.Emergency)
	return nil
}
