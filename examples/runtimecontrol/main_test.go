package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestRuntimeControlRuns(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, experiments.Coarse); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"workload x264 @1x",
		"transient warm-up",
		"runtime regulation under a synthetic emergency:",
		"final: TCASE",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}
