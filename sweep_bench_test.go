// Serial-vs-parallel benchmarks and determinism proofs for the sweep
// engine on the real paper workloads:
//
//	go test -bench=Sweep -benchmem
//
// compares the §VI-B/C design-space grid and the Fig. 6 scenario sweep
// evaluated by one worker against the full pool. The tests assert that
// the parallel sweeps return byte-identical results to the serial ones;
// run them with -race to also prove the pool is data-race free.
package repro_test

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/experiments"
	"repro/internal/sweep"
	"repro/internal/thermal"
)

// withWorkers runs f under a process-wide sweep worker override and
// restores the GOMAXPROCS-following default afterwards.
func withWorkers(n int, f func()) {
	sweep.SetDefaultWorkers(n)
	defer sweep.SetDefaultWorkers(0)
	f()
}

// poolWorkers is the worker count the parallel benchmarks and the
// determinism tests use: the full machine, but at least 4 so the
// concurrent paths (and -race interleavings) are exercised even on small
// runners.
func poolWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n < 4 {
		n = 4
	}
	return n
}

func TestSweepDesignSpaceDeterministic(t *testing.T) {
	var serial, parallel *experiments.DesignSpaceResult
	var err error
	withWorkers(1, func() { serial, err = experiments.DesignSpaceStudy(experiments.Coarse) })
	if err != nil {
		t.Fatal(err)
	}
	withWorkers(poolWorkers(), func() { parallel, err = experiments.DesignSpaceStudy(experiments.Coarse) })
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprintf("%+v", parallel), fmt.Sprintf("%+v", serial); got != want {
		t.Fatalf("parallel design-space result differs from serial:\n got %s\nwant %s", got, want)
	}
}

func TestSweepFig6Deterministic(t *testing.T) {
	var serial, parallel []experiments.Fig6Result
	var err error
	withWorkers(1, func() { serial, err = experiments.Fig6MappingScenarios(experiments.Coarse) })
	if err != nil {
		t.Fatal(err)
	}
	withWorkers(poolWorkers(), func() { parallel, err = experiments.Fig6MappingScenarios(experiments.Coarse) })
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprintf("%+v", parallel), fmt.Sprintf("%+v", serial); got != want {
		t.Fatalf("parallel Fig6 result differs from serial:\n got %s\nwant %s", got, want)
	}
}

func TestSweepTableIIDeterministic(t *testing.T) {
	subset := tableIISubset(t)
	var serial, parallel []experiments.TableIIRow
	var err error
	withWorkers(1, func() { serial, err = experiments.TableIIPolicyComparison(experiments.Coarse, subset) })
	if err != nil {
		t.Fatal(err)
	}
	withWorkers(poolWorkers(), func() { parallel, err = experiments.TableIIPolicyComparison(experiments.Coarse, subset) })
	if err != nil {
		t.Fatal(err)
	}
	// The averages must be bit-identical, not approximately equal: the
	// engine returns cells in input order, so the float accumulation
	// order matches the serial sweep exactly.
	if got, want := fmt.Sprintf("%+v", parallel), fmt.Sprintf("%+v", serial); got != want {
		t.Fatalf("parallel Table II rows differ from serial:\n got %s\nwant %s", got, want)
	}
}

// TestSweepFig6DeterministicMGPCG re-runs the Fig. 6 serial-vs-pooled
// byte-equality proof with the multigrid-preconditioned solver selected
// process-wide: solver choice is a performance knob, and for any fixed
// choice the pooled sweep must remain byte-identical to the serial one.
func TestSweepFig6DeterministicMGPCG(t *testing.T) {
	experiments.SetDefaultSolver(thermal.SolverMGPCG)
	defer experiments.SetDefaultSolver(thermal.SolverCG)
	var serial, parallel []experiments.Fig6Result
	var err error
	withWorkers(1, func() { serial, err = experiments.Fig6MappingScenarios(experiments.Coarse) })
	if err != nil {
		t.Fatal(err)
	}
	withWorkers(poolWorkers(), func() { parallel, err = experiments.Fig6MappingScenarios(experiments.Coarse) })
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprintf("%+v", parallel), fmt.Sprintf("%+v", serial); got != want {
		t.Fatalf("parallel MG-PCG Fig6 result differs from serial:\n got %s\nwant %s", got, want)
	}
}

// TestResolutionScalingDeterministicMGPCG: the resolution-scaling sweep's
// deterministic fields (everything except wall time) must be
// byte-identical between a serial and a pooled run with MG-PCG.
func TestResolutionScalingDeterministicMGPCG(t *testing.T) {
	sizes := []int{16, 24}
	solvers := []thermal.Solver{thermal.SolverMGPCG}
	strip := func(cells []experiments.ResolutionCell) string {
		for i := range cells {
			cells[i].WallMS = 0
		}
		return fmt.Sprintf("%+v", cells)
	}
	var serial, parallel []experiments.ResolutionCell
	var err error
	withWorkers(1, func() { serial, err = experiments.ExtResolutionScaling(sizes, solvers) })
	if err != nil {
		t.Fatal(err)
	}
	withWorkers(poolWorkers(), func() { parallel, err = experiments.ExtResolutionScaling(sizes, solvers) })
	if err != nil {
		t.Fatal(err)
	}
	if got, want := strip(parallel), strip(serial); got != want {
		t.Fatalf("pooled resolution sweep differs from serial:\n got %s\nwant %s", got, want)
	}
}

// BenchmarkSweepDesignSpaceSerial is the single-worker baseline for the
// §VI-B/C design-space grid (50 independent co-simulations).
func BenchmarkSweepDesignSpaceSerial(b *testing.B) {
	withWorkers(1, func() {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.DesignSpaceStudy(experiments.Coarse); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSweepDesignSpaceParallel runs the same grid across the worker
// pool; on a multi-core runner it should beat the serial baseline by at
// least the factor of available cores (modulo the final partial batch).
func BenchmarkSweepDesignSpaceParallel(b *testing.B) {
	withWorkers(poolWorkers(), func() {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.DesignSpaceStudy(experiments.Coarse); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSweepFig5Serial / Parallel cover the orientation study, whose
// four points each build their own system.
func BenchmarkSweepFig5Serial(b *testing.B) {
	withWorkers(1, func() {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.Fig5Orientation(experiments.Coarse); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkSweepFig5Parallel(b *testing.B) {
	withWorkers(poolWorkers(), func() {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.Fig5Orientation(experiments.Coarse); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSweepTableIISerial / Parallel cover the policy-comparison grid
// on the three-benchmark subset (27 plan+solve cells).
func BenchmarkSweepTableIISerial(b *testing.B) {
	subset := tableIISubset(b)
	withWorkers(1, func() {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.TableIIPolicyComparison(experiments.Coarse, subset); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkSweepTableIIParallel(b *testing.B) {
	subset := tableIISubset(b)
	withWorkers(poolWorkers(), func() {
		for i := 0; i < b.N; i++ {
			if _, err := experiments.TableIIPolicyComparison(experiments.Coarse, subset); err != nil {
				b.Fatal(err)
			}
		}
	})
}
