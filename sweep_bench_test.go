// Serial-vs-parallel benchmarks and determinism proofs for the sweep
// engine on the real paper workloads:
//
//	go test -bench=Sweep -benchmem
//
// compares the §VI-B/C design-space grid and the Fig. 6 scenario sweep
// evaluated by one worker against the full pool. The tests assert that
// the parallel sweeps return byte-identical results to the serial ones;
// run them with -race to also prove the pool is data-race free. Worker
// counts and solver selections travel in each call's RunConfig — there is
// no process-wide knob — so the isolation test can run two differently
// configured sweeps concurrently and demand byte-identical results to
// their serial counterparts.
package repro_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/experiments"
	"repro/internal/thermal"
)

// atWorkers is the coarse-resolution config with a fixed worker count.
func atWorkers(n int) experiments.RunConfig {
	cfg := experiments.At(experiments.Coarse)
	cfg.Workers = n
	return cfg
}

// poolWorkers is the worker count the parallel benchmarks and the
// determinism tests use: the full machine, but at least 4 so the
// concurrent paths (and -race interleavings) are exercised even on small
// runners.
func poolWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n < 4 {
		n = 4
	}
	return n
}

func TestSweepDesignSpaceDeterministic(t *testing.T) {
	serial, err := experiments.DesignSpaceStudy(nil, atWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := experiments.DesignSpaceStudy(nil, atWorkers(poolWorkers()))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprintf("%+v", parallel), fmt.Sprintf("%+v", serial); got != want {
		t.Fatalf("parallel design-space result differs from serial:\n got %s\nwant %s", got, want)
	}
}

func TestSweepFig6Deterministic(t *testing.T) {
	serial, err := experiments.Fig6MappingScenarios(nil, atWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := experiments.Fig6MappingScenarios(nil, atWorkers(poolWorkers()))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprintf("%+v", parallel), fmt.Sprintf("%+v", serial); got != want {
		t.Fatalf("parallel Fig6 result differs from serial:\n got %s\nwant %s", got, want)
	}
}

func TestSweepTableIIDeterministic(t *testing.T) {
	subset := tableIISubset(t)
	serial, err := experiments.TableIIPolicyComparison(nil, atWorkers(1), subset)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := experiments.TableIIPolicyComparison(nil, atWorkers(poolWorkers()), subset)
	if err != nil {
		t.Fatal(err)
	}
	// The averages must be bit-identical, not approximately equal: the
	// engine returns cells in input order, so the float accumulation
	// order matches the serial sweep exactly.
	if got, want := fmt.Sprintf("%+v", parallel), fmt.Sprintf("%+v", serial); got != want {
		t.Fatalf("parallel Table II rows differ from serial:\n got %s\nwant %s", got, want)
	}
}

// TestSweepFig6DeterministicMGPCG re-runs the Fig. 6 serial-vs-pooled
// byte-equality proof with the multigrid-preconditioned solver selected
// in the RunConfig: solver choice is a performance knob, and for any
// fixed choice the pooled sweep must remain byte-identical to the serial
// one.
func TestSweepFig6DeterministicMGPCG(t *testing.T) {
	mg := func(workers int) experiments.RunConfig {
		cfg := atWorkers(workers)
		cfg.Solver = thermal.SolverMGPCG
		return cfg
	}
	serial, err := experiments.Fig6MappingScenarios(nil, mg(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := experiments.Fig6MappingScenarios(nil, mg(poolWorkers()))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprintf("%+v", parallel), fmt.Sprintf("%+v", serial); got != want {
		t.Fatalf("parallel MG-PCG Fig6 result differs from serial:\n got %s\nwant %s", got, want)
	}
}

// TestConcurrentRunsIsolated is the acceptance proof that killing the
// config globals worked: two concurrent runs of the same experiment with
// DIFFERENT solvers and worker counts must each produce byte-identical
// results to the same run executed serially. Under the old
// SetDefaultSolver/SetDefaultWorkers atomics this interleaving raced —
// one run's configuration could leak into the other.
func TestConcurrentRunsIsolated(t *testing.T) {
	cfgCG := atWorkers(2)
	cfgMG := atWorkers(poolWorkers())
	cfgMG.Solver = thermal.SolverMGPCG

	serialCG, err := experiments.Fig6MappingScenarios(nil, cfgCG)
	if err != nil {
		t.Fatal(err)
	}
	serialMG, err := experiments.Fig6MappingScenarios(nil, cfgMG)
	if err != nil {
		t.Fatal(err)
	}

	var (
		wg             sync.WaitGroup
		concCG, concMG []experiments.Fig6Result
		errCG, errMG   error
	)
	wg.Add(2)
	go func() { defer wg.Done(); concCG, errCG = experiments.Fig6MappingScenarios(nil, cfgCG) }()
	go func() { defer wg.Done(); concMG, errMG = experiments.Fig6MappingScenarios(nil, cfgMG) }()
	wg.Wait()
	if errCG != nil || errMG != nil {
		t.Fatalf("concurrent runs failed: %v / %v", errCG, errMG)
	}
	if got, want := fmt.Sprintf("%+v", concCG), fmt.Sprintf("%+v", serialCG); got != want {
		t.Fatalf("concurrent CG run differs from its serial twin:\n got %s\nwant %s", got, want)
	}
	if got, want := fmt.Sprintf("%+v", concMG), fmt.Sprintf("%+v", serialMG); got != want {
		t.Fatalf("concurrent MG-PCG run differs from its serial twin:\n got %s\nwant %s", got, want)
	}
}

// TestResolutionScalingDeterministicMGPCG: the resolution-scaling sweep's
// deterministic fields (everything except wall time) must be
// byte-identical between a serial and a pooled run with MG-PCG.
func TestResolutionScalingDeterministicMGPCG(t *testing.T) {
	sizes := []int{16, 24}
	solvers := []thermal.Solver{thermal.SolverMGPCG}
	strip := func(cells []experiments.ResolutionCell) string {
		for i := range cells {
			cells[i].WallMS = 0
		}
		return fmt.Sprintf("%+v", cells)
	}
	serial, err := experiments.ExtResolutionScaling(nil, atWorkers(1), sizes, solvers)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := experiments.ExtResolutionScaling(nil, atWorkers(poolWorkers()), sizes, solvers)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := strip(parallel), strip(serial); got != want {
		t.Fatalf("pooled resolution sweep differs from serial:\n got %s\nwant %s", got, want)
	}
}

// BenchmarkSweepDesignSpaceSerial is the single-worker baseline for the
// §VI-B/C design-space grid (50 independent co-simulations).
func BenchmarkSweepDesignSpaceSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.DesignSpaceStudy(nil, atWorkers(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepDesignSpaceParallel runs the same grid across the worker
// pool; on a multi-core runner it should beat the serial baseline by at
// least the factor of available cores (modulo the final partial batch).
func BenchmarkSweepDesignSpaceParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.DesignSpaceStudy(nil, atWorkers(poolWorkers())); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepFig5Serial / Parallel cover the orientation study, whose
// four points each build their own system.
func BenchmarkSweepFig5Serial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5Orientation(nil, atWorkers(1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepFig5Parallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5Orientation(nil, atWorkers(poolWorkers())); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepTableIISerial / Parallel cover the policy-comparison grid
// on the three-benchmark subset (27 plan+solve cells).
func BenchmarkSweepTableIISerial(b *testing.B) {
	subset := tableIISubset(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableIIPolicyComparison(nil, atWorkers(1), subset); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepTableIIParallel(b *testing.B) {
	subset := tableIISubset(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableIIPolicyComparison(nil, atWorkers(poolWorkers()), subset); err != nil {
			b.Fatal(err)
		}
	}
}
